#include "netlist/verilog_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/error.h"

namespace sddd::netlist {

namespace {

struct Token {
  std::string text;
  std::size_t line = 0;
};

/// All verilog diagnostics are ParseErrors carrying (source, line); the
/// source is the file path when parsing a file, "verilog" otherwise.
[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& msg) {
  throw ParseError(source, line, msg);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$' || c == '[' || c == ']' || c == '.';
}

/// Lexer: identifiers/keywords and single-char punctuation; strips both
/// comment styles.
std::vector<Token> tokenize(std::istream& in, const std::string& source) {
  std::vector<Token> tokens;
  std::string line;
  std::size_t line_no = 0;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        const auto end = line.find("*/", i);
        if (end == std::string::npos) {
          i = line.size();
        } else {
          in_block_comment = false;
          i = end + 2;
        }
        continue;
      }
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < line.size()) {
        if (line[i + 1] == '/') break;  // line comment
        if (line[i + 1] == '*') {
          in_block_comment = true;
          i += 2;
          continue;
        }
      }
      if (is_ident_char(c)) {
        std::size_t j = i;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        tokens.push_back(Token{line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == ';') {
        tokens.push_back(Token{std::string(1, c), line_no});
        ++i;
        continue;
      }
      fail(source, line_no, std::string("unexpected character '") + c + "'");
    }
  }
  if (in_block_comment) fail(source, line_no, "unterminated block comment");
  return tokens;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string source)
      : tokens_(std::move(tokens)), source_(std::move(source)) {}

  Netlist run() {
    expect_keyword("module");
    const Token& name = next("module name");
    nl_.set_name(name.text);
    // Port list (names only; direction comes from input/output statements).
    if (peek_is("(")) {
      skip();  // (
      while (!peek_is(")")) {
        (void)next("port name");
        if (peek_is(",")) skip();
      }
      skip();  // )
    }
    expect(";");

    while (!peek_is("endmodule")) {
      const Token& head = next("statement");
      if (head.text == "input") {
        for (const auto& sig : name_list(head.line)) {
          nl_.define(get_or_declare(sig), CellType::kInput, {});
        }
      } else if (head.text == "output") {
        for (const auto& sig : name_list(head.line)) {
          outputs_.push_back(sig);
          output_lines_.push_back(head.line);
          (void)get_or_declare(sig);
        }
      } else if (head.text == "wire") {
        for (const auto& sig : name_list(head.line)) {
          (void)get_or_declare(sig);
        }
      } else if (const auto type = parse_cell_type(head.text)) {
        parse_instance(*type, head.line);
      } else {
        fail(source_, head.line, "unsupported construct: " + head.text);
      }
    }
    skip();  // endmodule

    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      const auto it = ids_.find(outputs_[i]);
      if (it == ids_.end()) {
        fail(source_, output_lines_[i],
             "output of undefined net: " + outputs_[i]);
      }
      nl_.add_output(it->second);
    }
    try {
      nl_.freeze();
    } catch (const std::exception& e) {
      // Graph-level failure: no single line, still name the source.
      throw ParseError(source_, 0, e.what());
    }
    return std::move(nl_);
  }

 private:
  // --- token helpers ---
  const Token& next(const char* what) {
    if (pos_ >= tokens_.size()) {
      const std::size_t last_line =
          tokens_.empty() ? 0 : tokens_.back().line;
      fail(source_, last_line,
           std::string("expected ") + what + " but reached end of file");
    }
    return tokens_[pos_++];
  }
  bool peek_is(std::string_view text) const {
    return pos_ < tokens_.size() && tokens_[pos_].text == text;
  }
  void skip() { ++pos_; }
  void expect(std::string_view text) {
    const Token& t = next(std::string(text).c_str());
    if (t.text != text) {
      fail(source_, t.line,
           "expected '" + std::string(text) + "', got '" + t.text + "'");
    }
  }
  void expect_keyword(std::string_view kw) { expect(kw); }

  /// Parses "a, b, c ;" after input/output/wire.
  std::vector<std::string> name_list(std::size_t line) {
    std::vector<std::string> names;
    for (;;) {
      const Token& t = next("net name");
      if (!is_ident_char(t.text.front())) {
        fail(source_, line, "bad net name: " + t.text);
      }
      names.push_back(t.text);
      const Token& sep = next("',' or ';'");
      if (sep.text == ";") break;
      if (sep.text != ",") fail(source_, sep.line, "expected ',' or ';'");
    }
    return names;
  }

  /// Parses "[instance_name] ( out, in... ) ;" for a primitive.
  void parse_instance(CellType type, std::size_t line) {
    if (!peek_is("(")) {
      (void)next("instance name");  // optional label
    }
    expect("(");
    std::vector<std::string> terminals;
    while (!peek_is(")")) {
      const Token& t = next("terminal");
      if (t.text == ",") continue;
      terminals.push_back(t.text);
    }
    skip();  // )
    expect(";");
    if (terminals.size() < 2) {
      fail(source_, line, "primitive needs an output and at least one input");
    }
    const GateId out = get_or_declare(terminals.front());
    std::vector<GateId> fanins;
    for (std::size_t i = 1; i < terminals.size(); ++i) {
      fanins.push_back(get_or_declare(terminals[i]));
    }
    try {
      nl_.define(out, type, std::move(fanins));
    } catch (const std::exception& e) {
      fail(source_, line, e.what());
    }
  }

  GateId get_or_declare(const std::string& sig) {
    const auto it = ids_.find(sig);
    if (it != ids_.end()) return it->second;
    const GateId id = nl_.declare(sig);
    ids_.emplace(sig, id);
    return id;
  }

  std::vector<Token> tokens_;
  std::string source_;
  std::size_t pos_ = 0;
  Netlist nl_;
  std::unordered_map<std::string, GateId> ids_;
  std::vector<std::string> outputs_;
  std::vector<std::size_t> output_lines_;
};

}  // namespace

Netlist parse_verilog(std::istream& in, std::string source) {
  if (source.empty()) source = "verilog";
  return Parser(tokenize(in, source), source).run();
}

Netlist parse_verilog_string(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_verilog(in);
}

Netlist parse_verilog_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open verilog file: " + path.string());
  }
  return parse_verilog(in, path.string());
}

void write_verilog(const Netlist& nl, std::ostream& out) {
  out << "// " << nl.name() << " - written by sddd\n";
  out << "module " << nl.name() << " (";
  bool first = true;
  for (const GateId g : nl.inputs()) {
    out << (first ? "" : ", ") << nl.gate(g).name;
    first = false;
  }
  for (const GateId g : nl.outputs()) {
    out << (first ? "" : ", ") << nl.gate(g).name;
    first = false;
  }
  out << ");\n";
  for (const GateId g : nl.inputs()) {
    out << "  input " << nl.gate(g).name << ";\n";
  }
  for (const GateId g : nl.outputs()) {
    out << "  output " << nl.gate(g).name << ";\n";
  }
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (nl.gate(g).type == CellType::kInput) continue;
    if (nl.output_index(g) >= 0) continue;  // already declared as output
    out << "  wire " << nl.gate(g).name << ";\n";
  }
  std::size_t instance = 0;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.type == CellType::kInput) continue;
    out << "  " << cell_type_name(gate.type) << " u" << instance++ << " ("
        << gate.name;
    for (const GateId f : gate.fanins) out << ", " << nl.gate(f).name;
    out << ");\n";
  }
  out << "endmodule\n";
}

std::string to_verilog_string(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(nl, os);
  return os.str();
}

}  // namespace sddd::netlist
