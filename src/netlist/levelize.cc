#include "netlist/levelize.h"

#include <algorithm>
#include <stdexcept>

namespace sddd::netlist {

Levelization::Levelization(const Netlist& nl) {
  if (!nl.frozen()) {
    throw std::logic_error("Levelization: netlist must be frozen");
  }
  const std::size_t n = nl.gate_count();
  level_.assign(n, 0);
  order_.reserve(n);

  // Kahn's algorithm over combinational dependencies only: DFF data inputs
  // are cut, so DFFs are sources together with PIs and constants.
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<GateId> queue;
  queue.reserve(n);
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = nl.gate(g);
    if (is_combinational(gate.type)) {
      pending[g] = static_cast<std::uint32_t>(gate.fanins.size());
      if (pending[g] == 0) queue.push_back(g);  // degenerate, e.g. none
    } else {
      pending[g] = 0;
      queue.push_back(g);
    }
  }

  std::size_t head = 0;
  while (head < queue.size()) {
    const GateId g = queue[head++];
    order_.push_back(g);
    for (const GateId fo : nl.gate(g).fanouts) {
      if (!is_combinational(nl.gate(fo).type)) continue;  // DFF input is cut
      // fanouts lists one entry per connected pin, so decrementing once per
      // visit matches the per-pin pending count.
      if (--pending[fo] == 0) {
        std::uint32_t lvl = 0;
        for (const GateId fi : nl.gate(fo).fanins) {
          lvl = std::max(lvl, level_[fi] + 1);
        }
        level_[fo] = lvl;
        depth_ = std::max(depth_, lvl);
        queue.push_back(fo);
      }
    }
  }

  if (order_.size() != n) {
    throw std::invalid_argument(
        "Levelization: combinational cycle detected (a cycle not broken by "
        "a DFF)");
  }
}

}  // namespace sddd::netlist
