// Unit tests for the timing stack: cell library derating, arc delay
// models, the counter-based delay field (determinism, correlation),
// static SSTA (Sum/Max semantics) and the dynamic simulator (induced
// circuits, incremental defect evaluation, instance simulation).
#include <gtest/gtest.h>

#include <cmath>

#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"
#include "timing/ssta.h"

namespace sddd::timing {
namespace {

using logicsim::BitSimulator;
using logicsim::PatternPair;
using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;
using paths::TransitionGraph;

Netlist chain_netlist() {
  Netlist nl("chain");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_gate(CellType::kNand, "g1", {a, b});
  const auto g2 = nl.add_gate(CellType::kNot, "g2", {g1});
  nl.add_output(g2);
  nl.freeze();
  return nl;
}

TEST(CellLibrary, BaseDelaysAndDerating) {
  const StatisticalCellLibrary lib;
  const auto nl = chain_netlist();
  const GateId g1 = nl.find("g1");
  const GateId g2 = nl.find("g2");
  // g1 is a 2-input NAND with a single fanout: base delay, no derating.
  EXPECT_DOUBLE_EQ(lib.nominal_delay(nl, nl.arc_of(g1, 0)),
                   lib.config().nand_delay);
  EXPECT_DOUBLE_EQ(lib.nominal_delay(nl, nl.arc_of(g2, 0)),
                   lib.config().not_delay);
}

TEST(CellLibrary, ArityAndLoadDerating) {
  Netlist nl("derate");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto g = nl.add_gate(CellType::kAnd, "g", {a, b, c});
  const auto s1 = nl.add_gate(CellType::kBuf, "s1", {g});
  const auto s2 = nl.add_gate(CellType::kBuf, "s2", {g});
  nl.add_output(s1);
  nl.add_output(s2);
  nl.freeze();
  const StatisticalCellLibrary lib;
  const double expect = lib.config().and_delay * lib.config().arity_factor *
                        (1.0 + lib.config().load_slope);
  EXPECT_NEAR(lib.nominal_delay(nl, nl.arc_of(g, 0)), expect, 1e-9);
}

TEST(CellLibrary, NonCombinationalThrows) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  // Arc 0 of an input gate does not exist; use the library's arc_delay on
  // a DFF-bearing netlist instead.
  const auto seq = netlist::parse_bench_string(netlist::s27_bench_text());
  const GateId dff = seq.find("G5");
  ASSERT_EQ(seq.gate(dff).type, CellType::kDff);
  EXPECT_THROW((void)lib.nominal_delay(seq, seq.arc_of(dff, 0)),
               std::invalid_argument);
}

TEST(DelayModel, MeansMatchLibrary) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  EXPECT_EQ(model.means().size(), nl.arc_count());
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    EXPECT_DOUBLE_EQ(model.mean(a), lib.nominal_delay(nl, a));
    EXPECT_DOUBLE_EQ(model.arc_rv(a).mean(), model.mean(a));
  }
  EXPECT_GT(model.mean_cell_delay(), 0.0);
}

TEST(DelayField, DeterministicAndOrderIndependent) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField f1(model, 64, 0.05, 99);
  const DelayField f2(model, 64, 0.05, 99);
  // Same seed: identical in any access order.
  EXPECT_DOUBLE_EQ(f1.delay(2, 63), f2.delay(2, 63));
  EXPECT_DOUBLE_EQ(f1.delay(0, 0), f2.delay(0, 0));
  const DelayField f3(model, 64, 0.05, 100);
  EXPECT_NE(f1.delay(0, 0), f3.delay(0, 0));
}

TEST(DelayField, SamplesFollowArcDistribution) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 20000, 0.0, 7);
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t k = 0; k < field.sample_count(); ++k) {
      const double d = field.delay(a, k);
      sum += d;
      sq += d * d;
    }
    const double n = static_cast<double>(field.sample_count());
    const double mean = sum / n;
    const double sd = std::sqrt(sq / n - mean * mean);
    EXPECT_NEAR(mean, model.mean(a), 0.01 * model.mean(a));
    EXPECT_NEAR(sd, model.arc_rv(a).stddev(), 0.1 * model.arc_rv(a).stddev());
  }
}

TEST(DelayField, GlobalWeightCorrelatesArcs) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField indep(model, 6000, 0.0, 5);
  const DelayField corr(model, 6000, 0.15, 5);
  const auto corr_of = [&](const DelayField& f, ArcId x, ArcId y) {
    std::vector<double> xs(f.sample_count());
    std::vector<double> ys(f.sample_count());
    for (std::size_t k = 0; k < f.sample_count(); ++k) {
      xs[k] = f.delay(x, k);
      ys[k] = f.delay(y, k);
    }
    return stats::SampleVector(std::move(xs))
        .correlation(stats::SampleVector(std::move(ys)));
  };
  EXPECT_NEAR(corr_of(indep, 0, 2), 0.0, 0.05);
  EXPECT_GT(corr_of(corr, 0, 2), 0.5);
}

TEST(CounterUniform, DeterministicOpenInterval) {
  for (int i = 0; i < 1000; ++i) {
    const double u = counter_uniform(3, 5, i);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, counter_uniform(3, 5, i));
  }
  EXPECT_NE(counter_uniform(3, 5, 1), counter_uniform(3, 6, 1));
}

TEST(StaticTiming, ChainDelayIsSumAndMax) {
  // Chain: Delta(C) = max over paths; with point-mass delays the result is
  // exactly the heaviest topological path.
  const auto nl = chain_netlist();
  CellLibraryConfig config;
  config.three_sigma_pct = 0.0;  // deterministic
  const StatisticalCellLibrary lib(config);
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 16, 0.0, 3);
  const Levelization lev(nl);
  const StaticTiming ssta(field, lev);
  const double expect = config.nand_delay + config.not_delay;
  EXPECT_NEAR(ssta.circuit_delay().mean(), expect, 1e-9);
  EXPECT_NEAR(ssta.circuit_delay().stddev(), 0.0, 1e-12);
  EXPECT_NEAR(ssta.arrival(nl.find("g1")).mean(), config.nand_delay, 1e-9);
}

TEST(StaticTiming, QuantileMonotoneInQ) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 80;
  spec.depth = 10;
  spec.seed = 81;
  const auto nl = netlist::synthesize(spec);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 300, 0.05, 4);
  const Levelization lev(nl);
  const StaticTiming ssta(field, lev);
  EXPECT_LT(ssta.clk_at_quantile(0.5), ssta.clk_at_quantile(0.99));
  EXPECT_GT(ssta.clk_at_quantile(0.5), 0.0);
}

TEST(TimingLength, MatchesManualSum) {
  const auto nl = chain_netlist();
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 50, 0.0, 9);
  paths::Path p;
  const GateId g1 = nl.find("g1");
  const GateId g2 = nl.find("g2");
  p.arcs = {nl.arc_of(g1, 0), nl.arc_of(g2, 0)};
  const auto tl = timing_length(field, p);
  for (std::size_t k = 0; k < 50; ++k) {
    EXPECT_DOUBLE_EQ(tl[k], field.delay(nl.arc_of(g1, 0), k) +
                                field.delay(nl.arc_of(g2, 0), k));
  }
}

struct DynFixture {
  Netlist nl = chain_netlist();
  Levelization lev{nl};
  StatisticalCellLibrary lib;
  ArcDelayModel model{nl, lib};
  DelayField field{model, 200, 0.0, 13};
  BitSimulator sim{nl, lev};
  DynamicTimingSimulator dyn{field, lev};
  // a rises, b steady 1: the a->g1->g2 path is active.
  PatternPair pp{{false, true}, {true, true}};
  TransitionGraph tg{sim, lev, pp};
};

TEST(DynamicSim, ArrivalIsPathSum) {
  DynFixture f;
  const auto m = f.dyn.simulate(f.tg);
  const GateId g1 = f.nl.find("g1");
  const GateId g2 = f.nl.find("g2");
  ASSERT_TRUE(m.has(g1));
  ASSERT_TRUE(m.has(g2));
  for (std::size_t k = 0; k < 200; ++k) {
    EXPECT_DOUBLE_EQ(m.rows[g1][k], f.field.delay(f.nl.arc_of(g1, 0), k));
    EXPECT_DOUBLE_EQ(m.rows[g2][k], f.field.delay(f.nl.arc_of(g1, 0), k) +
                                        f.field.delay(f.nl.arc_of(g2, 0), k));
  }
  // Non-toggling input b carries no row.
  EXPECT_FALSE(m.has(f.nl.find("b")));
}

TEST(DynamicSim, ErrorVectorMatchesCriticalProbability) {
  DynFixture f;
  const auto m = f.dyn.simulate(f.tg);
  const GateId g2 = f.nl.find("g2");
  const double clk = f.model.mean(f.nl.arc_of(f.nl.find("g1"), 0)) +
                     f.model.mean(f.nl.arc_of(g2, 0));
  const auto err = f.dyn.error_vector(f.tg, m, clk);
  ASSERT_EQ(err.size(), 1u);
  std::size_t count = 0;
  for (const double x : m.rows[g2]) count += (x > clk) ? 1U : 0U;
  EXPECT_DOUBLE_EQ(err[0], count / 200.0);
  // At a huge clk the error vector vanishes (Definition E.1 discussion).
  const auto err0 = f.dyn.error_vector(f.tg, m, 1e9);
  EXPECT_DOUBLE_EQ(err0[0], 0.0);
}

TEST(DynamicSim, DefectShiftsArrivals) {
  DynFixture f;
  const auto baseline = f.dyn.simulate(f.tg);
  const GateId g1 = f.nl.find("g1");
  InjectedDefect defect;
  defect.arc = f.nl.arc_of(g1, 0);
  defect.extra.assign(200, 50.0);
  const double clk =
      f.model.mean(f.nl.arc_of(g1, 0)) + f.model.mean(f.nl.arc_of(f.nl.find("g2"), 0));
  const auto e = f.dyn.error_vector_with_defect(f.tg, baseline, defect, clk);
  const auto mref = f.dyn.error_vector(f.tg, baseline, clk);
  // Adding 50 tu must strictly increase the critical probability here.
  EXPECT_GT(e[0], mref[0]);
  // And equal the exact recomputation with shifted samples.
  std::size_t count = 0;
  for (std::size_t k = 0; k < 200; ++k) {
    const double arr = f.field.delay(f.nl.arc_of(g1, 0), k) + 50.0 +
                       f.field.delay(f.nl.arc_of(f.nl.find("g2"), 0), k);
    count += (arr > clk) ? 1U : 0U;
  }
  EXPECT_DOUBLE_EQ(e[0], count / 200.0);
}

TEST(DynamicSim, InactiveDefectArcLeavesErrorUnchanged) {
  DynFixture f;
  const auto baseline = f.dyn.simulate(f.tg);
  InjectedDefect defect;
  defect.arc = f.nl.arc_of(f.nl.find("g1"), 1);  // b's arc: not active
  defect.extra.assign(200, 500.0);
  const double clk = 100.0;
  EXPECT_EQ(f.dyn.error_vector_with_defect(f.tg, baseline, defect, clk),
            f.dyn.error_vector(f.tg, baseline, clk));
}

TEST(DynamicSim, MonotoneInDefectSize) {
  // Property (Definition E.1): err_ij >= crt_ij, and larger defects only
  // increase critical probabilities.
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 80;
  spec.depth = 10;
  spec.seed = 91;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 150, 0.03, 21);
  const BitSimulator sim(nl, lev);
  const DynamicTimingSimulator dyn(field, lev);
  stats::Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    PatternPair pp;
    pp.v1.resize(10);
    pp.v2.resize(10);
    for (std::size_t i = 0; i < 10; ++i) {
      pp.v1[i] = rng.bernoulli(0.5);
      pp.v2[i] = rng.bernoulli(0.5);
    }
    const TransitionGraph tg(sim, lev, pp);
    const auto baseline = dyn.simulate(tg);
    const double clk = dyn.induced_delay(tg, baseline).quantile(0.8);
    const auto m = dyn.error_vector(tg, baseline, clk);
    const ArcId arc = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
    InjectedDefect small;
    small.arc = arc;
    small.extra.assign(150, 30.0);
    InjectedDefect big;
    big.arc = arc;
    big.extra.assign(150, 120.0);
    const auto es = dyn.error_vector_with_defect(tg, baseline, small, clk);
    const auto eb = dyn.error_vector_with_defect(tg, baseline, big, clk);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_GE(es[i], m[i] - 1e-12);
      EXPECT_GE(eb[i], es[i] - 1e-12);
    }
  }
}

TEST(DynamicSim, IncrementalMatchesFullRecompute) {
  // The cone-incremental E computation must equal simulating a field with
  // the defect folded in everywhere.
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 100;
  spec.depth = 11;
  spec.seed = 95;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 100, 0.02, 33);
  const BitSimulator sim(nl, lev);
  const DynamicTimingSimulator dyn(field, lev);
  stats::Rng rng(13);
  PatternPair pp;
  pp.v1.resize(12);
  pp.v2.resize(12);
  for (std::size_t i = 0; i < 12; ++i) {
    pp.v1[i] = rng.bernoulli(0.5);
    pp.v2[i] = !pp.v1[i];
  }
  const TransitionGraph tg(sim, lev, pp);
  const auto baseline = dyn.simulate(tg);
  const double clk = dyn.induced_delay(tg, baseline).quantile(0.7);
  for (int t = 0; t < 20; ++t) {
    const ArcId arc = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
    InjectedDefect defect;
    defect.arc = arc;
    defect.extra.assign(100, rng.uniform(20.0, 150.0));
    const auto fast = dyn.error_vector_with_defect(tg, baseline, defect, clk);
    // Reference: brute-force per-sample instance simulation.
    std::vector<double> slow(nl.outputs().size(), 0.0);
    for (std::size_t k = 0; k < 100; ++k) {
      const auto arr = dyn.simulate_instance(
          tg, k, std::make_pair(arc, defect.extra[k]));
      for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
        const GateId o = nl.outputs()[i];
        if (tg.toggles(o) && arr[o] > clk) slow[i] += 1.0 / 100.0;
      }
    }
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-9) << "arc " << arc << " output " << i;
    }
  }
}

TEST(DynamicSim, InstanceMatchesFieldSample) {
  DynFixture f;
  const auto arr = f.dyn.simulate_instance(f.tg, 17, std::nullopt);
  const GateId g2 = f.nl.find("g2");
  EXPECT_DOUBLE_EQ(arr[g2], f.field.delay(f.nl.arc_of(f.nl.find("g1"), 0), 17) +
                                f.field.delay(f.nl.arc_of(g2, 0), 17));
  EXPECT_DOUBLE_EQ(arr[f.nl.find("b")], -1.0);  // non-toggling
  EXPECT_THROW((void)f.dyn.simulate_instance(f.tg, 9999, std::nullopt),
               std::invalid_argument);
}

TEST(DynamicSim, InducedDelayIsMaxOverTogglingOutputs) {
  DynFixture f;
  const auto m = f.dyn.simulate(f.tg);
  const auto delta = f.dyn.induced_delay(f.tg, m);
  const GateId g2 = f.nl.find("g2");
  for (std::size_t k = 0; k < delta.size(); ++k) {
    EXPECT_DOUBLE_EQ(delta[k], m.rows[g2][k]);
  }
}

TEST(NominalArrivals, MatchesPointMassField) {
  // With zero process spread the statistical simulation collapses onto the
  // nominal arrival skeleton.
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 70;
  spec.depth = 9;
  spec.seed = 97;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  CellLibraryConfig config;
  config.three_sigma_pct = 0.0;
  const StatisticalCellLibrary lib(config);
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 4, 0.0, 51);
  const BitSimulator sim(nl, lev);
  const DynamicTimingSimulator dyn(field, lev);
  stats::Rng rng(14);
  PatternPair pp;
  pp.v1.resize(10);
  pp.v2.resize(10);
  for (std::size_t i = 0; i < 10; ++i) {
    pp.v1[i] = rng.bernoulli(0.5);
    pp.v2[i] = !pp.v1[i];
  }
  const TransitionGraph tg(sim, lev, pp);
  const auto nominal = nominal_arrivals(tg, model, lev);
  const auto matrix = dyn.simulate(tg);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (!tg.toggles(g)) {
      EXPECT_DOUBLE_EQ(nominal[g], -1.0);
      continue;
    }
    EXPECT_NEAR(nominal[g], matrix.rows[g][0], 1e-9);
  }
}

}  // namespace
}  // namespace sddd::timing
