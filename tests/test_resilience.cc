// Tests for the resilience layer: the sddd::Error taxonomy, the
// SDDD_FAULTS injection harness, atomic artifact writes, cancellation and
// deadlines, the checkpoint journal (round trip, corruption, truncated
// tails), trial quarantine inside run_diagnosis_experiment, and the
// hardened parsers (behavior CSV, bench, verilog).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "diagnosis/dictionary_io.h"
#include "eval/checkpoint.h"
#include "eval/experiment.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "netlist/verilog_io.h"
#include "obs/atomic_file.h"
#include "obs/error.h"
#include "obs/faults.h"
#include "runtime/cancel.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd {
namespace {

/// Clears the process-wide fault spec on scope exit so a failing test
/// cannot leak injected faults into the rest of the suite.
struct FaultSpecGuard {
  ~FaultSpecGuard() { obs::set_fault_spec(""); }
};

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

netlist::Netlist small_netlist() {
  netlist::SynthSpec spec;
  spec.name = "resil";
  spec.n_inputs = 10;
  spec.n_outputs = 8;
  spec.n_gates = 60;
  spec.depth = 8;
  spec.seed = 11;
  return netlist::synthesize(spec);
}

eval::ExperimentConfig small_config() {
  eval::ExperimentConfig config;
  config.n_chips = 4;
  config.mc_samples = 40;
  config.seed = 5;
  config.calibration_sites = 6;
  config.max_injection_retries = 40;
  return config;
}

void expect_records_equal(const eval::TrialRecord& a,
                          const eval::TrialRecord& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.failed_test, b.failed_test);
  EXPECT_EQ(a.injection_attempts, b.injection_attempts);
  EXPECT_EQ(a.n_patterns, b.n_patterns);
  EXPECT_EQ(a.n_failing_cells, b.n_failing_cells);
  EXPECT_EQ(a.n_suspects, b.n_suspects);
  EXPECT_EQ(a.true_arc_in_suspects, b.true_arc_in_suspects);
  EXPECT_EQ(a.logic_baseline_rank, b.logic_baseline_rank);
  EXPECT_EQ(a.chip.sample_index, b.chip.sample_index);
  EXPECT_EQ(a.chip.defect_arc, b.chip.defect_arc);
  // Bitwise, not approximate: resume promises bit-identical results.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.chip.defect_size),
            std::bit_cast<std::uint64_t>(b.chip.defect_size));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.chip.size_mean),
            std::bit_cast<std::uint64_t>(b.chip.size_mean));
  ASSERT_EQ(a.rank_of_true.size(), b.rank_of_true.size());
  for (std::size_t i = 0; i < a.rank_of_true.size(); ++i) {
    EXPECT_EQ(a.rank_of_true[i], b.rank_of_true[i]);
  }
  ASSERT_EQ(a.extra_defects.size(), b.extra_defects.size());
  for (std::size_t i = 0; i < a.extra_defects.size(); ++i) {
    EXPECT_EQ(a.extra_defects[i].first, b.extra_defects[i].first);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.extra_defects[i].second),
              std::bit_cast<std::uint64_t>(b.extra_defects[i].second));
  }
}

// --- Error taxonomy ---

TEST(ErrorTaxonomy, CodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kParse, ErrorCode::kModel, ErrorCode::kNumeric,
        ErrorCode::kIo, ErrorCode::kCancelled, ErrorCode::kDeadline,
        ErrorCode::kFault, ErrorCode::kInternal}) {
    ErrorCode parsed = ErrorCode::kInternal;
    ASSERT_TRUE(parse_error_code(error_code_name(code), &parsed));
    EXPECT_EQ(parsed, code);
  }
  ErrorCode out;
  EXPECT_FALSE(parse_error_code("frobnication", &out));
  EXPECT_FALSE(parse_error_code("", &out));
}

TEST(ErrorTaxonomy, WhatCarriesCodePrefix) {
  const Error e(ErrorCode::kIo, "disk full");
  EXPECT_EQ(e.code(), ErrorCode::kIo);
  EXPECT_STREQ(e.what(), "[io] disk full");
  // Pre-taxonomy call sites catch std::runtime_error; that must keep
  // working.
  try {
    throw IoError("x");
  } catch (const std::runtime_error& caught) {
    EXPECT_NE(std::string(caught.what()).find("[io]"), std::string::npos);
  }
}

TEST(ErrorTaxonomy, ParseErrorCarriesLocation) {
  const ParseError e("mydesign.bench", 7, "unknown gate type: FROB");
  EXPECT_EQ(e.code(), ErrorCode::kParse);
  EXPECT_EQ(e.source(), "mydesign.bench");
  EXPECT_EQ(e.line(), 7u);
  const std::string what = e.what();
  EXPECT_NE(what.find("mydesign.bench line 7:"), std::string::npos) << what;
  // line 0 = whole-input diagnostic: no line text.
  const ParseError whole("a.v", 0, "combinational cycle");
  EXPECT_EQ(std::string(whole.what()), "[parse] a.v: combinational cycle");
}

// --- Fault-injection harness ---

TEST(FaultSpec, SelectorGrammar) {
  FaultSpecGuard guard;
  obs::set_fault_spec("every@*;mod@%3;below@<2;list@1,4");
  EXPECT_TRUE(obs::faults_enabled());
  EXPECT_TRUE(obs::fault_at("every", 0));
  EXPECT_TRUE(obs::fault_at("every", 999));
  EXPECT_TRUE(obs::fault_at("mod", 0));
  EXPECT_FALSE(obs::fault_at("mod", 1));
  EXPECT_TRUE(obs::fault_at("mod", 6));
  EXPECT_TRUE(obs::fault_at("below", 1));
  EXPECT_FALSE(obs::fault_at("below", 2));
  EXPECT_TRUE(obs::fault_at("list", 4));
  EXPECT_FALSE(obs::fault_at("list", 2));
  EXPECT_FALSE(obs::fault_at("unknown-site", 0));
  obs::set_fault_spec("");
  EXPECT_FALSE(obs::faults_enabled());
  EXPECT_FALSE(obs::fault_at("every", 0));
}

TEST(FaultSpec, MalformedSpecThrowsParseError) {
  FaultSpecGuard guard;
  for (const char* bad : {"nosite", "a@", "a@x7", "a@1,,2", "@*"}) {
    try {
      obs::set_fault_spec(bad);
      FAIL() << "accepted malformed spec: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParse) << bad;
    }
  }
}

TEST(FaultSpec, FaultPointThrowsTypedError) {
  FaultSpecGuard guard;
  obs::set_fault_spec("seam@2");
  obs::fault_point("seam", 1);  // not selected: no-op
  try {
    obs::fault_point("seam", 2);
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFault);
    EXPECT_NE(std::string(e.what()).find("seam[2]"), std::string::npos);
  }
}

// --- Atomic artifact writes ---

TEST(AtomicFile, WritesAndReplaces) {
  const auto path = temp_path("atomic_basic.txt");
  ASSERT_TRUE(obs::atomic_write_file(path.string(), "first"));
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(obs::atomic_write_file(path.string(), "second, longer"));
  EXPECT_EQ(slurp(path), "second, longer");
  // No .tmp litter left behind.
  for (const auto& entry :
       std::filesystem::directory_iterator(path.parent_path())) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
  std::filesystem::remove(path);
}

TEST(AtomicFile, OpenFaultLeavesOldContentIntact) {
  FaultSpecGuard guard;
  const auto path = temp_path("atomic_openfault.txt");
  ASSERT_TRUE(obs::atomic_write_file(path.string(), "precious"));
  obs::set_fault_spec("io.open@*");
  EXPECT_FALSE(obs::atomic_write_file(path.string(), "clobber"));
  EXPECT_THROW(obs::atomic_write_file_or_throw(path.string(), "clobber"),
               IoError);
  obs::set_fault_spec("");
  EXPECT_EQ(slurp(path), "precious");
  std::filesystem::remove(path);
}

TEST(AtomicFile, ShortWriteFaultLeavesOldContentIntact) {
  FaultSpecGuard guard;
  const auto path = temp_path("atomic_shortwrite.txt");
  ASSERT_TRUE(obs::atomic_write_file(path.string(), "precious"));
  obs::set_fault_spec("io.short_write@*");
  EXPECT_FALSE(obs::atomic_write_file(path.string(), "clobbered payload"));
  obs::set_fault_spec("");
  EXPECT_EQ(slurp(path), "precious");
  std::filesystem::remove(path);
}

// --- Checkpoint journal ---

eval::TrialRecord sample_record() {
  eval::TrialRecord r;
  r.status = eval::TrialStatus::kDiagnosed;
  r.failed_test = true;
  r.injection_attempts = 3;
  r.n_patterns = 9;
  r.n_failing_cells = 4;
  r.n_suspects = 117;
  r.true_arc_in_suspects = true;
  r.logic_baseline_rank = 12;
  r.chip.sample_index = 31;
  r.chip.defect_arc = 204;
  r.chip.defect_size = 0.1;  // not exactly representable: bit-exactness test
  r.chip.size_mean = 55.25;
  r.rank_of_true = {0, -1, 3, 7};
  r.extra_defects = {{11, 1.5}, {90, -0.0}};
  return r;
}

TEST(Checkpoint, RecordRoundTripIsExact) {
  const eval::TrialRecord r = sample_record();
  const std::string line = eval::encode_checkpoint_record(42, r);
  eval::CheckpointRecord decoded;
  ASSERT_TRUE(eval::decode_checkpoint_record(line, &decoded));
  EXPECT_EQ(decoded.trial, 42u);
  EXPECT_TRUE(decoded.record.from_checkpoint);
  expect_records_equal(decoded.record, r);
}

TEST(Checkpoint, QuarantinedRecordKeepsErrorAndMessage) {
  eval::TrialRecord r;
  r.status = eval::TrialStatus::kQuarantined;
  r.error_code = ErrorCode::kNumeric;
  r.error_message = "non-finite delay sample\nwith a second line \\ slash";
  r.rank_of_true = {-1, -1};
  const std::string line = eval::encode_checkpoint_record(0, r);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record = one line
  eval::CheckpointRecord decoded;
  ASSERT_TRUE(eval::decode_checkpoint_record(line, &decoded));
  EXPECT_EQ(decoded.record.status, eval::TrialStatus::kQuarantined);
  EXPECT_EQ(decoded.record.error_code, ErrorCode::kNumeric);
  EXPECT_EQ(decoded.record.error_message, r.error_message);
}

TEST(Checkpoint, CorruptRecordIsRejected) {
  std::string line = eval::encode_checkpoint_record(7, sample_record());
  eval::CheckpointRecord decoded;
  ASSERT_TRUE(eval::decode_checkpoint_record(line, &decoded));
  std::string flipped = line;
  flipped[line.size() / 2] = flipped[line.size() / 2] == '0' ? '1' : '0';
  EXPECT_FALSE(eval::decode_checkpoint_record(flipped, &decoded));
  EXPECT_FALSE(eval::decode_checkpoint_record("T deadbeef junk", &decoded));
  EXPECT_FALSE(eval::decode_checkpoint_record("", &decoded));
}

TEST(Checkpoint, LoadAcceptsLongestValidPrefixAndWriterTruncatesTail) {
  const auto path = temp_path("journal_tail.ckpt");
  std::filesystem::remove(path);
  const std::uint64_t fp = 0x1234abcdULL;
  {
    eval::CheckpointWriter writer(path.string(), fp, 8, 0, true);
    writer.append(0, sample_record());
    writer.append(3, sample_record());
  }
  // Simulate a crash mid-append: a record line with no trailing newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "T 00112233445566";
  }
  const eval::CheckpointLoad load = eval::load_checkpoint(path.string(), fp, 8);
  ASSERT_TRUE(load.header_ok);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records[0].trial, 0u);
  EXPECT_EQ(load.records[1].trial, 3u);
  // Reopening at valid_bytes drops the partial tail, then appends cleanly.
  {
    eval::CheckpointWriter writer(path.string(), fp, 8, load.valid_bytes,
                                  false);
    writer.append(5, sample_record());
  }
  const eval::CheckpointLoad reloaded =
      eval::load_checkpoint(path.string(), fp, 8);
  ASSERT_EQ(reloaded.records.size(), 3u);
  EXPECT_EQ(reloaded.records[2].trial, 5u);
  std::filesystem::remove(path);
}

TEST(Checkpoint, FingerprintMismatchRefusesToResume) {
  const auto path = temp_path("journal_fp.ckpt");
  std::filesystem::remove(path);
  {
    eval::CheckpointWriter writer(path.string(), 1111, 4, 0, true);
    writer.append(0, sample_record());
  }
  EXPECT_THROW((void)eval::load_checkpoint(path.string(), 2222, 4), IoError);
  EXPECT_THROW((void)eval::load_checkpoint(path.string(), 1111, 5), IoError);
  // Missing file is not an error - it just means "start fresh".
  std::filesystem::remove(path);
  const auto load = eval::load_checkpoint(path.string(), 2222, 4);
  EXPECT_FALSE(load.header_ok);
  EXPECT_TRUE(load.records.empty());
}

TEST(Checkpoint, FingerprintTracksExperimentIdentity) {
  const eval::ExperimentConfig base = small_config();
  eval::ExperimentConfig other = base;
  EXPECT_EQ(eval::experiment_fingerprint("c", base),
            eval::experiment_fingerprint("c", other));
  other.seed += 1;
  EXPECT_NE(eval::experiment_fingerprint("c", base),
            eval::experiment_fingerprint("c", other));
  other = base;
  other.n_chips += 1;
  EXPECT_NE(eval::experiment_fingerprint("c", base),
            eval::experiment_fingerprint("c", other));
  EXPECT_NE(eval::experiment_fingerprint("c", base),
            eval::experiment_fingerprint("d", base));
  // Execution-only knobs must NOT change the fingerprint, or a resumed run
  // could never share its own journal.
  other = base;
  other.deadline_s = 5.0;
  other.resume = true;
  other.checkpoint_path = "x";
  EXPECT_EQ(eval::experiment_fingerprint("c", base),
            eval::experiment_fingerprint("c", other));
}

// --- Trial quarantine and resume in the experiment runner ---

TEST(ExperimentResilience, InjectedTrialFaultIsQuarantined) {
  FaultSpecGuard guard;
  const auto nl = small_netlist();
  const eval::ExperimentConfig config = small_config();
  const auto clean = eval::run_diagnosis_experiment(nl, config);
  ASSERT_EQ(clean.trials.size(), 4u);
  EXPECT_EQ(clean.quarantined_trials(), 0u);

  obs::set_fault_spec("exp.trial@1");
  const auto faulted = eval::run_diagnosis_experiment(nl, config);
  obs::set_fault_spec("");
  EXPECT_EQ(faulted.quarantined_trials(), 1u);
  EXPECT_EQ(faulted.trials[1].status, eval::TrialStatus::kQuarantined);
  EXPECT_EQ(faulted.trials[1].error_code, ErrorCode::kFault);
  EXPECT_FALSE(faulted.trials[1].failed_test);
  EXPECT_FALSE(faulted.degraded);  // quarantine is not degradation
  // The blast radius is exactly one trial: every other record matches the
  // clean run bit for bit.
  for (const std::size_t i : {0u, 2u, 3u}) {
    expect_records_equal(faulted.trials[i], clean.trials[i]);
  }
  // Success-rate denominator excludes the quarantined trial explicitly.
  EXPECT_EQ(faulted.diagnosable_trials() + faulted.quarantined_trials() +
                [&] {
                  std::size_t n = 0;
                  for (const auto& t : faulted.trials) {
                    n += t.status == eval::TrialStatus::kNotFailing ? 1 : 0;
                  }
                  return n;
                }(),
            faulted.trials.size());
}

TEST(ExperimentResilience, ResumeFromPartialJournalIsBitIdentical) {
  const auto nl = small_netlist();
  eval::ExperimentConfig config = small_config();
  const auto reference = eval::run_diagnosis_experiment(nl, config);

  // Full journaled run, then cut the journal down to header + 2 records to
  // simulate a kill partway through.
  const auto path = temp_path("journal_resume.ckpt");
  std::filesystem::remove(path);
  config.checkpoint_path = path.string();
  (void)eval::run_diagnosis_experiment(nl, config);
  {
    const std::string contents = slurp(path);
    std::size_t pos = 0;
    for (int newlines = 0; newlines < 3; ++newlines) {
      pos = contents.find('\n', pos) + 1;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, pos) << "T 0011 partial-tail-no-newline";
  }
  config.resume = true;
  const auto resumed = eval::run_diagnosis_experiment(nl, config);
  EXPECT_EQ(resumed.resumed_trials, 2u);
  ASSERT_EQ(resumed.trials.size(), reference.trials.size());
  for (std::size_t i = 0; i < reference.trials.size(); ++i) {
    expect_records_equal(resumed.trials[i], reference.trials[i]);
  }

  // The deterministic result JSON byte-matches the uninterrupted run's.
  const auto ref_json = temp_path("ref.json");
  const auto res_json = temp_path("res.json");
  eval::write_experiment_json(reference, ref_json.string());
  eval::write_experiment_json(resumed, res_json.string());
  EXPECT_EQ(slurp(ref_json), slurp(res_json));
  std::filesystem::remove(path);
  std::filesystem::remove(ref_json);
  std::filesystem::remove(res_json);
}

TEST(ExperimentResilience, DeadlineDegradesThenResumeFinishes) {
  const auto nl = small_netlist();
  eval::ExperimentConfig config = small_config();
  const auto reference = eval::run_diagnosis_experiment(nl, config);

  const auto path = temp_path("journal_deadline.ckpt");
  std::filesystem::remove(path);
  config.checkpoint_path = path.string();
  config.deadline_s = 1e-9;  // expires before the first trial starts
  const auto degraded = eval::run_diagnosis_experiment(nl, config);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_GT(degraded.skipped_trials(), 0u);
  EXPECT_EQ(degraded.completed_trials(),
            degraded.trials.size() - degraded.skipped_trials());

  config.deadline_s = 0.0;
  config.resume = true;
  const auto finished = eval::run_diagnosis_experiment(nl, config);
  EXPECT_FALSE(finished.degraded);
  EXPECT_EQ(finished.skipped_trials(), 0u);
  for (std::size_t i = 0; i < reference.trials.size(); ++i) {
    expect_records_equal(finished.trials[i], reference.trials[i]);
  }
  std::filesystem::remove(path);
}

TEST(ExperimentResilience, JournalAppendFaultOnlyCostsDurability) {
  FaultSpecGuard guard;
  const auto nl = small_netlist();
  eval::ExperimentConfig config = small_config();
  const auto path = temp_path("journal_writefault.ckpt");
  std::filesystem::remove(path);
  config.checkpoint_path = path.string();
  obs::set_fault_spec("ckpt.write@1");
  const auto result = eval::run_diagnosis_experiment(nl, config);
  obs::set_fault_spec("");
  // The run itself is unharmed; only trial 1's record is missing from the
  // journal, so a resume re-runs exactly that trial.
  EXPECT_EQ(result.quarantined_trials(), 0u);
  const auto load = eval::load_checkpoint(
      path.string(), eval::experiment_fingerprint(nl.name(), config),
      config.n_chips);
  EXPECT_EQ(load.records.size(), config.n_chips - 1);
  std::filesystem::remove(path);
}

// --- NaN delay rows surface as typed numeric errors ---

TEST(NumericValidation, NanDelayRowThrowsNumericError) {
  FaultSpecGuard guard;
  const auto nl = small_netlist();
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 16, 0.03, 9);
  const timing::DynamicTimingSimulator sim(field, lev);
  obs::set_fault_spec("mc.nan_row@2");
  try {
    sim.prewarm();
    FAIL() << "expected NumericError from the poisoned arc row";
  } catch (const NumericError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumeric);
    EXPECT_NE(std::string(e.what()).find("arc 2"), std::string::npos)
        << e.what();
  }
}

// --- Hardened parsers ---

TEST(BehaviorCsvHardening, DiagnosticsNameRowAndColumn) {
  const auto parse = [](const std::string& text) {
    std::istringstream is(text);
    return diagnosis::read_behavior_csv(is);
  };
  try {
    (void)parse("2,2\n0,1\n0,x\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("output row 1"), std::string::npos) << what;
    EXPECT_NE(what.find("pattern column 1"), std::string::npos) << what;
    EXPECT_EQ(e.line(), 3u);
  }
  try {
    (void)parse("2,3\n0,1,1\n0,1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("jagged row"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2 of 3"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse("0,4\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("empty matrix"), std::string::npos);
  }
  try {
    (void)parse("3,2\n0,1\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("1 of 3"), std::string::npos)
        << e.what();
  }
}

TEST(ParserHardening, BenchFileErrorsCarryPathAndLine) {
  const auto path = temp_path("broken_input.bench");
  {
    std::ofstream out(path);
    out << "INPUT(a)\ng = FROB(a)\n";
  }
  try {
    (void)netlist::parse_bench_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), path.string());
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("broken_input.bench line 2"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
  EXPECT_THROW((void)netlist::parse_bench_file(path), IoError);
}

TEST(ParserHardening, VerilogFileErrorsCarryPathAndLine) {
  const auto path = temp_path("broken_input.v");
  {
    std::ofstream out(path);
    out << "module m (a);\n  input a;\n  frob (x, a);\nendmodule\n";
  }
  try {
    (void)netlist::parse_verilog_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), path.string());
    EXPECT_EQ(e.line(), 3u);
  }
  std::filesystem::remove(path);
  EXPECT_THROW((void)netlist::parse_verilog_file(path), IoError);
}

TEST(ParserHardening, VerilogEofErrorNamesLastLine) {
  try {
    (void)netlist::parse_verilog_string("module m (a);\n  input a;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    EXPECT_NE(std::string(e.what()).find("end of file"), std::string::npos);
  }
}

}  // namespace
}  // namespace sddd
