// Tests for scan application modes (enhanced / launch-on-shift /
// launch-on-capture) plus an exhaustive brute-force verification of the
// sensitization machinery on c17 (all 1024 pattern pairs).
#include <gtest/gtest.h>

#include "atpg/scan_modes.h"
#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/scan.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"

namespace sddd::atpg {
namespace {

using logicsim::BitSimulator;
using logicsim::Pattern;
using logicsim::PatternPair;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

struct S27Fixture {
  Netlist seq = netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  Netlist core = netlist::full_scan_transform(seq);
  Levelization lev{core};
  ScanChain chain = chain_from_transform(core, seq.inputs().size());
  std::vector<GateId> capture =
      capture_map_from_transform(core, seq.outputs().size(), 3);
};

TEST(ScanModes, ChainAndCaptureShapes) {
  S27Fixture f;
  EXPECT_EQ(f.chain.chain_positions.size(), 3u);  // 3 flops
  EXPECT_EQ(f.capture.size(), 3u);
  // Chain positions index pseudo-PIs (after the 4 original PIs).
  for (const std::size_t pos : f.chain.chain_positions) {
    EXPECT_GE(pos, 4u);
    EXPECT_LT(pos, f.core.inputs().size());
  }
  EXPECT_THROW(chain_from_transform(f.core, 99), std::invalid_argument);
  EXPECT_THROW(capture_map_from_transform(f.core, 99, 3),
               std::invalid_argument);
}

TEST(ScanModes, GeneratedPairsObeyTheirMode) {
  S27Fixture f;
  stats::Rng rng(61);
  for (int t = 0; t < 50; ++t) {
    const auto enhanced = constrained_pattern_pair(
        f.core, f.lev, f.chain, ScanMode::kEnhancedScan, rng);
    EXPECT_TRUE(pair_obeys_mode(enhanced, f.core, f.lev, f.chain,
                                ScanMode::kEnhancedScan));
    const auto los = constrained_pattern_pair(
        f.core, f.lev, f.chain, ScanMode::kLaunchOnShift, rng);
    EXPECT_TRUE(pair_obeys_mode(los, f.core, f.lev, f.chain,
                                ScanMode::kLaunchOnShift));
    const auto loc = constrained_pattern_pair(
        f.core, f.lev, f.chain, ScanMode::kLaunchOnCapture, rng, f.capture);
    EXPECT_TRUE(pair_obeys_mode(loc, f.core, f.lev, f.chain,
                                ScanMode::kLaunchOnCapture, f.capture));
  }
}

TEST(ScanModes, LosShiftStructure) {
  S27Fixture f;
  stats::Rng rng(62);
  const auto pair = constrained_pattern_pair(
      f.core, f.lev, f.chain, ScanMode::kLaunchOnShift, rng);
  // Every chain bit except the scan-in equals its predecessor's v1 value.
  for (std::size_t i = 1; i < f.chain.chain_positions.size(); ++i) {
    EXPECT_EQ(pair.v2[f.chain.chain_positions[i]],
              pair.v1[f.chain.chain_positions[i - 1]]);
  }
}

TEST(ScanModes, LocMatchesFunctionalCapture) {
  S27Fixture f;
  stats::Rng rng(63);
  const BitSimulator sim(f.core, f.lev);
  const auto pair = constrained_pattern_pair(
      f.core, f.lev, f.chain, ScanMode::kLaunchOnCapture, rng, f.capture);
  const auto values = sim.simulate_single(pair.v1);
  for (std::size_t i = 0; i < f.chain.chain_positions.size(); ++i) {
    EXPECT_EQ(pair.v2[f.chain.chain_positions[i]],
              static_cast<bool>(values[f.capture[i]]));
  }
  // Violating pairs are rejected.
  auto bad = pair;
  bad.v2[f.chain.chain_positions[0]] = !bad.v2[f.chain.chain_positions[0]];
  EXPECT_FALSE(pair_obeys_mode(bad, f.core, f.lev, f.chain,
                               ScanMode::kLaunchOnCapture, f.capture));
  EXPECT_THROW((void)constrained_pattern_pair(f.core, f.lev, f.chain,
                                              ScanMode::kLaunchOnCapture, rng),
               std::invalid_argument);  // missing capture map
}

// ---------------------------------------------------------------------------
// Exhaustive verification on c17: for every one of the 32x32 pattern
// pairs, the transition graph's claims are checked against brute force.
TEST(ExhaustiveC17, TransitionGraphMatchesBruteForce) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);

  std::size_t active_arcs_total = 0;
  for (unsigned m1 = 0; m1 < 32; ++m1) {
    for (unsigned m2 = 0; m2 < 32; ++m2) {
      PatternPair pp;
      pp.v1.resize(5);
      pp.v2.resize(5);
      for (unsigned i = 0; i < 5; ++i) {
        pp.v1[i] = (m1 >> i) & 1;
        pp.v2[i] = (m2 >> i) & 1;
      }
      const paths::TransitionGraph tg(sim, lev, pp);
      const auto val1 = sim.simulate_single(pp.v1);
      const auto val2 = sim.simulate_single(pp.v2);
      for (GateId g = 0; g < nl.gate_count(); ++g) {
        // 1. toggles() is exactly the value change.
        ASSERT_EQ(tg.toggles(g), val1[g] != val2[g]);
        ASSERT_EQ(tg.initial_value(g), val1[g]);
        ASSERT_EQ(tg.final_value(g), val2[g]);
        if (!tg.toggles(g) || !is_combinational(nl.gate(g).type)) continue;
        // 2. Active fanins are toggling, and the min-rule applies exactly
        //    when some input settles at the controlling value (NAND: 0).
        const auto& act = tg.active_fanins(g);
        ASSERT_FALSE(act.empty());
        bool some_ctrl = false;
        for (const GateId f : nl.gate(g).fanins) some_ctrl |= !val2[f];
        ASSERT_EQ(tg.rule(g) == paths::ArrivalRule::kMinOverActive,
                  some_ctrl);
        for (const auto a : act) {
          const auto& arc = nl.arc(a);
          const GateId f = nl.gate(arc.gate).fanins[arc.pin];
          ASSERT_TRUE(tg.toggles(f));
          if (some_ctrl) {
            // Min rule: active inputs toggled TO the controlling value.
            ASSERT_FALSE(val2[f]);
            ASSERT_TRUE(val1[f]);
          }
          ++active_arcs_total;
        }
      }
      // 3. Every active path enumerated ends at the output and uses only
      //    active arcs (spot check when an output toggles).
      for (const GateId o : nl.outputs()) {
        if (!tg.toggles(o)) continue;
        for (const auto& path : paths::enumerate_active_paths(tg, o, 16)) {
          ASSERT_TRUE(paths::is_valid_path(nl, path));
          for (const auto a : path.arcs) ASSERT_TRUE(tg.is_active(a));
        }
      }
    }
  }
  EXPECT_GT(active_arcs_total, 1000u);  // the sweep exercised real activity
}

}  // namespace
}  // namespace sddd::atpg
