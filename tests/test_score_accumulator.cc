// Edge-case tests for the incremental diagnosis scoring (error_fn.h):
// phi exactly 0 and exactly 1, the empty pattern set, agreement between
// the incremental accumulator and the batch DiagnosisErrorFn, and order
// agreement between ranking_key() and finish() when nothing underflows.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "diagnosis/error_fn.h"

namespace sddd::diagnosis {
namespace {

constexpr std::array<Method, 4> kAllMethods = {Method::kSimI, Method::kSimII,
                                               Method::kSimIII, Method::kRev};

ScoreAccumulator accumulate(Method m, const std::vector<double>& phis) {
  ScoreAccumulator acc(m);
  for (const double p : phis) acc.add_phi(p);
  return acc;
}

TEST(ScoreAccumulator, PhiExactlyZero) {
  // phi = 0: the suspect predicts the observed column with probability 0.
  const auto i = accumulate(Method::kSimI, {0.0});
  EXPECT_DOUBLE_EQ(i.finish(1), 0.0);

  const auto ii = accumulate(Method::kSimII, {0.0});
  EXPECT_DOUBLE_EQ(ii.finish(1), 0.0);

  // Method III floors log(0), so finish() lands at the floor rather than a
  // NaN/-inf; it must still be (essentially) zero and finite.
  const auto iii = accumulate(Method::kSimIII, {0.0});
  EXPECT_TRUE(std::isfinite(iii.finish(1)));
  EXPECT_LE(iii.finish(1), 1e-299);
  EXPECT_TRUE(std::isfinite(iii.ranking_key(1)));

  const auto rev = accumulate(Method::kRev, {0.0});
  EXPECT_DOUBLE_EQ(rev.finish(1), 1.0);  // distance (1 - 0)^2
}

TEST(ScoreAccumulator, PhiExactlyOne) {
  // phi = 1: a certain match.  Method I clamps 1 - phi away from zero to
  // keep the log finite, so its score is 1 up to that epsilon.
  const auto i = accumulate(Method::kSimI, {1.0});
  EXPECT_NEAR(i.finish(1), 1.0, 1e-15);
  EXPECT_TRUE(std::isfinite(i.ranking_key(1)));

  const auto ii = accumulate(Method::kSimII, {1.0});
  EXPECT_DOUBLE_EQ(ii.finish(1), 1.0);

  const auto iii = accumulate(Method::kSimIII, {1.0});
  EXPECT_DOUBLE_EQ(iii.finish(1), 1.0);

  const auto rev = accumulate(Method::kRev, {1.0});
  EXPECT_DOUBLE_EQ(rev.finish(1), 0.0);  // perfect: zero distance
}

TEST(ScoreAccumulator, EmptyPatternSet) {
  for (const Method m : kAllMethods) {
    const ScoreAccumulator acc(m);
    EXPECT_TRUE(std::isfinite(acc.finish(0))) << method_name(m);
    EXPECT_TRUE(std::isfinite(acc.ranking_key(0))) << method_name(m);
  }
  // Neutral elements of each aggregation.
  EXPECT_DOUBLE_EQ(ScoreAccumulator(Method::kSimI).finish(0), 0.0);
  EXPECT_DOUBLE_EQ(ScoreAccumulator(Method::kSimII).finish(0), 0.0);
  EXPECT_DOUBLE_EQ(ScoreAccumulator(Method::kSimIII).finish(0), 1.0);
  EXPECT_DOUBLE_EQ(ScoreAccumulator(Method::kRev).finish(0), 0.0);
}

TEST(ScoreAccumulator, MatchesBatchErrorFn) {
  const std::vector<double> phis = {0.9, 0.25, 0.6, 0.05};
  for (const Method m : kAllMethods) {
    const auto fn = make_error_fn(m);
    const auto acc = accumulate(m, phis);
    EXPECT_NEAR(acc.finish(phis.size()), fn->score(phis), 1e-12)
        << method_name(m);
    EXPECT_EQ(fn->higher_is_better(), m != Method::kRev) << method_name(m);
  }
}

TEST(ScoreAccumulator, RankingKeyAgreesWithFinish) {
  // Distinct, moderate phi vectors: no underflow, so the probability-domain
  // finish() and the log-domain ranking_key() must order every pair the
  // same way under every method.
  const std::vector<std::vector<double>> suspects = {
      {0.9, 0.8, 0.7},
      {0.5, 0.5, 0.5},
      {0.1, 0.2, 0.3},
      {0.99, 0.01, 0.5},
      {0.33, 0.66, 0.11},
  };
  for (const Method m : kAllMethods) {
    std::vector<double> scores;
    std::vector<double> keys;
    for (const auto& phis : suspects) {
      const auto acc = accumulate(m, phis);
      scores.push_back(acc.finish(phis.size()));
      keys.push_back(acc.ranking_key(phis.size()));
    }
    for (std::size_t a = 0; a < suspects.size(); ++a) {
      for (std::size_t b = 0; b < suspects.size(); ++b) {
        EXPECT_EQ(ranks_better(m, scores[a], scores[b]),
                  ranks_better(m, keys[a], keys[b]))
            << method_name(m) << " suspects " << a << " vs " << b;
      }
    }
  }
}

TEST(ScoreAccumulator, RankingKeySurvivesUnderflow) {
  // 200 patterns at phi = 1e-10: prod phi underflows finish() to zero for
  // Method III, yet the log-domain key still separates a suspect with one
  // additional bad pattern from one without.
  ScoreAccumulator better(Method::kSimIII);
  ScoreAccumulator worse(Method::kSimIII);
  for (int j = 0; j < 200; ++j) {
    better.add_phi(1e-10);
    worse.add_phi(1e-10);
  }
  worse.add_phi(1e-10);
  EXPECT_EQ(better.finish(200), 0.0);  // the underflow the key exists for
  EXPECT_TRUE(
      ranks_better(Method::kSimIII, better.ranking_key(200),
                   worse.ranking_key(201)));
}

}  // namespace
}  // namespace sddd::diagnosis
