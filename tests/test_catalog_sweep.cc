// Parameterized sweep over all eight Table I circuit profiles: the
// stand-in generator, levelization, timing model and sensitization
// machinery must hold up on every profile (at reduced scale so the sweep
// stays fast).
#include <gtest/gtest.h>

#include "atpg/diag_patterns.h"
#include "logicsim/bitsim.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd {
namespace {

using netlist::ArcId;
using netlist::GateId;
using netlist::IscasProfile;

class CatalogSweep : public ::testing::TestWithParam<const IscasProfile*> {};

TEST_P(CatalogSweep, StandinShapeMatchesProfile) {
  const auto& profile = *GetParam();
  const auto nl = netlist::make_standin(profile, 0.15, 5);
  EXPECT_EQ(nl.inputs().size(), profile.n_pi + profile.n_ff);
  EXPECT_EQ(nl.outputs().size(), profile.n_po + profile.n_ff);
  EXPECT_EQ(nl.dff_count(), 0u);
  const netlist::Levelization lev(nl);
  EXPECT_GE(lev.depth(), 1u);
  EXPECT_LE(lev.depth(), profile.depth);
  // K values from the paper are usable on this circuit.
  for (const int k : profile.table1_k) {
    EXPECT_GE(k, 1);
    EXPECT_LT(static_cast<std::size_t>(k), nl.arc_count());
  }
}

TEST_P(CatalogSweep, TimingAndSensitizationRun) {
  const auto& profile = *GetParam();
  const auto nl = netlist::make_standin(profile, 0.15, 7);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 40, 0.03, 9);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(nl, lev);
  stats::Rng rng(11);
  std::size_t toggling_outputs = 0;
  for (int t = 0; t < 4; ++t) {
    const auto pp = atpg::random_pattern_pair(nl.inputs().size(), rng);
    const paths::TransitionGraph tg(sim, lev, pp);
    const auto arrivals = dyn.simulate(tg);
    const auto delta = dyn.induced_delay(tg, arrivals);
    EXPECT_GE(delta.max_value(), 0.0);
    for (const GateId o : nl.outputs()) {
      if (!tg.toggles(o)) continue;
      ++toggling_outputs;
      ASSERT_TRUE(arrivals.has(o));
      for (std::size_t k = 0; k < 40; ++k) {
        EXPECT_GT(arrivals.rows[o][k], 0.0);
      }
    }
  }
  EXPECT_GT(toggling_outputs, 0u);
}

TEST_P(CatalogSweep, DiagnosticPatternsGenerate) {
  const auto& profile = *GetParam();
  const auto nl = netlist::make_standin(profile, 0.15, 13);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  stats::Rng rng(17);
  atpg::DiagnosticPatternConfig config;
  config.paths_per_site = 2;
  config.site_search_tries = 64;
  config.max_patterns = 8;
  const auto site = static_cast<ArcId>(nl.arc_count() / 2);
  const auto patterns =
      atpg::generate_diagnostic_patterns(model, lev, site, config, rng);
  EXPECT_GE(patterns.size(), 1u);
  EXPECT_LE(patterns.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTable1Circuits, CatalogSweep,
    ::testing::Values(&netlist::table1_circuits()[0],
                      &netlist::table1_circuits()[1],
                      &netlist::table1_circuits()[2],
                      &netlist::table1_circuits()[3],
                      &netlist::table1_circuits()[4],
                      &netlist::table1_circuits()[5],
                      &netlist::table1_circuits()[6],
                      &netlist::table1_circuits()[7]),
    [](const ::testing::TestParamInfo<const IscasProfile*>& param_info) {
      return std::string(param_info.param->name);
    });

}  // namespace
}  // namespace sddd
