// Unit tests for the diagnosis core: behavior matrices, the probabilistic
// fault dictionary (M/E/S matrices and their invariants), phi computation
// (reproducing the paper's worked Example E.1), the four error functions,
// score accumulation, ranking and suspect extraction.
#include <gtest/gtest.h>

#include <algorithm>

#include "atpg/pdf_atpg.h"
#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "diagnosis/dictionary.h"
#include "diagnosis/error_fn.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {
namespace {

using logicsim::BitSimulator;
using logicsim::PatternPair;
using netlist::ArcId;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

TEST(Phi, ReproducesPaperExampleE1) {
  // Example E.1: B_j = [0, 1, 1], S_j = [0.4, 0.3, 0.1]
  //   p = [0.6, 0.3, 0.1], phi = 0.018.
  const std::vector<double> s = {0.4, 0.3, 0.1};
  const std::vector<bool> b = {false, true, true};
  EXPECT_NEAR(phi(s, b), 0.018, 1e-12);
}

TEST(Phi, AllZeroSignatureMatchesAllPassing) {
  const std::vector<double> s = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(phi(s, {false, false}), 1.0);
  EXPECT_DOUBLE_EQ(phi(s, {true, false}), 0.0);
}

TEST(Phi, SizeMismatchThrows) {
  const std::vector<double> s = {0.1};
  EXPECT_THROW((void)phi(s, {true, false}), std::invalid_argument);
}

TEST(ErrorFn, MethodFormulas) {
  const std::vector<double> phis = {0.5, 0.2};
  EXPECT_NEAR(make_error_fn(Method::kSimI)->score(phis),
              1.0 - 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(make_error_fn(Method::kSimII)->score(phis), 0.35, 1e-12);
  EXPECT_NEAR(make_error_fn(Method::kSimIII)->score(phis), 0.1, 1e-12);
  EXPECT_NEAR(make_error_fn(Method::kRev)->score(phis),
              0.25 + 0.64, 1e-12);
}

TEST(ErrorFn, Direction) {
  EXPECT_TRUE(make_error_fn(Method::kSimI)->higher_is_better());
  EXPECT_TRUE(make_error_fn(Method::kSimII)->higher_is_better());
  EXPECT_TRUE(make_error_fn(Method::kSimIII)->higher_is_better());
  EXPECT_FALSE(make_error_fn(Method::kRev)->higher_is_better());
  EXPECT_TRUE(ranks_better(Method::kSimII, 0.9, 0.1));
  EXPECT_TRUE(ranks_better(Method::kRev, 0.1, 0.9));
}

TEST(ErrorFn, AccumulatorMatchesBatchScore) {
  const std::vector<double> phis = {0.9, 0.01, 0.4, 0.7};
  for (const Method m : {Method::kSimI, Method::kSimII, Method::kSimIII,
                         Method::kRev}) {
    ScoreAccumulator acc(m);
    for (const double p : phis) acc.add_phi(p);
    EXPECT_NEAR(acc.finish(phis.size()), make_error_fn(m)->score(phis), 1e-12)
        << method_name(m);
  }
}

TEST(ErrorFn, MethodIIIVanishesOnOneMismatch) {
  // The paper's Section I observation: one impossible pattern zeroes the
  // whole Method III score.
  const std::vector<double> phis = {0.9, 0.0, 0.8};
  EXPECT_DOUBLE_EQ(make_error_fn(Method::kSimIII)->score(phis), 0.0);
  EXPECT_GT(make_error_fn(Method::kSimII)->score(phis), 0.0);
  EXPECT_GT(make_error_fn(Method::kSimI)->score(phis), 0.0);
}

TEST(ErrorFn, Names) {
  EXPECT_EQ(method_name(Method::kSimI), "Alg_sim-I");
  EXPECT_EQ(method_name(Method::kRev), "Alg_rev");
  EXPECT_EQ(make_error_fn(Method::kSimII)->name(), "Alg_sim-II");
}

TEST(BehaviorMatrix, BasicAccessors) {
  BehaviorMatrix B(3, 2);
  EXPECT_FALSE(B.any_failure());
  EXPECT_EQ(B.failure_count(), 0u);
  B.set(1, 0, true);
  B.set(2, 1, true);
  EXPECT_TRUE(B.any_failure());
  EXPECT_EQ(B.failure_count(), 2u);
  EXPECT_TRUE(B.at(1, 0));
  EXPECT_FALSE(B.at(0, 0));
  const auto fp = B.failing_patterns();
  EXPECT_EQ(fp, (std::vector<std::size_t>{0, 1}));
}

struct DiagFixture {
  Netlist nl;
  Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField dict_field;
  timing::DelayField inst_field;
  BitSimulator sim;
  timing::DynamicTimingSimulator dict_sim;
  timing::DynamicTimingSimulator inst_sim;
  defect::DefectSizeModel size_model;
  std::vector<PatternPair> patterns;
  double clk = 0.0;

  DiagFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 14;
          spec.n_outputs = 10;
          spec.n_gates = 110;
          spec.depth = 10;
          spec.seed = 113;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        model(nl, lib),
        dict_field(model, 250, 0.03, 1001),
        inst_field(model, 250, 0.03, 1002),
        sim(nl, lev),
        dict_sim(dict_field, lev),
        inst_sim(inst_field, lev),
        size_model(model.mean_cell_delay(), 0.5, 1.0, 0.5, 1003) {
    stats::Rng rng(1004);
    for (int i = 0; i < 10; ++i) {
      patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
    }
    // Set clk near the median induced delay so critical probabilities are
    // informative in both directions.
    stats::SampleVector delta(dict_field.sample_count(), 0.0);
    for (const auto& p : patterns) {
      const paths::TransitionGraph tg(sim, lev, p);
      const auto m = dict_sim.simulate(tg);
      delta.max_with(dict_sim.induced_delay(tg, m));
    }
    clk = delta.quantile(0.9);
  }
};

TEST(PatternSlice, MColumnMatchesErrorVector) {
  DiagFixture f;
  for (const auto& p : f.patterns) {
    const PatternSlice slice(f.dict_sim, f.sim, f.lev, p, f.clk);
    const auto m = f.dict_sim.simulate(slice.transition_graph());
    EXPECT_EQ(slice.m_column(),
              f.dict_sim.error_vector(slice.transition_graph(), m, f.clk));
  }
}

TEST(PatternSlice, SignatureIsNonNegativeForAllSuspects) {
  // Definition E.1: err_ij >= crt_ij, so S >= 0 everywhere.
  DiagFixture f;
  const PatternSlice slice(f.dict_sim, f.sim, f.lev, f.patterns[0], f.clk);
  for (ArcId a = 0; a < f.nl.arc_count(); a += 5) {
    const auto s = slice.signature_column(a, f.size_model);
    for (const double x : s) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(PatternSlice, InactiveSuspectHasZeroSignature) {
  DiagFixture f;
  const PatternSlice slice(f.dict_sim, f.sim, f.lev, f.patterns[0], f.clk);
  const auto& tg = slice.transition_graph();
  for (ArcId a = 0; a < f.nl.arc_count(); ++a) {
    if (tg.is_active(a)) continue;
    const auto s = slice.signature_column(a, f.size_model);
    for (const double x : s) EXPECT_DOUBLE_EQ(x, 0.0);
    break;
  }
}

TEST(FaultDictionary, MatricesConsistent) {
  DiagFixture f;
  const FaultDictionary dict(f.dict_sim, f.sim, f.lev, f.patterns, f.clk);
  EXPECT_EQ(dict.pattern_count(), f.patterns.size());
  const auto m = dict.m_matrix();
  ASSERT_EQ(m.size(), f.nl.outputs().size());
  for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
    const auto& col = dict.slice(j).m_column();
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_DOUBLE_EQ(m[i][j], col[i]);
    }
  }
  const auto e = dict.e_matrix(0, f.size_model);
  for (std::size_t i = 0; i < e.size(); ++i) {
    for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
      EXPECT_GE(e[i][j], m[i][j] - 1e-12);
    }
  }
}

TEST(ObserveBehavior, DefectFreePassesAtLargeClk) {
  DiagFixture f;
  const auto B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, 3,
                                  std::nullopt, 1e9);
  EXPECT_FALSE(B.any_failure());
}

TEST(ObserveBehavior, BigDefectFailsConeOutputs) {
  DiagFixture f;
  // Find an arc active under pattern 0 with a toggling PO in its cone.
  const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[0]);
  for (ArcId a = 0; a < f.nl.arc_count(); ++a) {
    if (!tg.is_active(a)) continue;
    bool reaches_po = false;
    for (const GateId g : tg.forward_cone(f.nl.arc(a).gate)) {
      reaches_po |= f.nl.output_index(g) >= 0;
    }
    if (!reaches_po) continue;
    const auto B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, 7,
                                    std::make_pair(a, 1e6), f.clk);
    EXPECT_TRUE(B.any_failure());
    return;
  }
  FAIL() << "no active arc reaching a PO found";
}

TEST(Diagnoser, SuspectsCoverFailingCones) {
  DiagFixture f;
  // Inject a huge defect so failures are unambiguous.
  const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[0]);
  ArcId site = netlist::kInvalidArc;
  for (ArcId a = 0; a < f.nl.arc_count(); ++a) {
    if (tg.is_active(a)) {
      for (const GateId g : tg.forward_cone(f.nl.arc(a).gate)) {
        if (f.nl.output_index(g) >= 0) {
          site = a;
          break;
        }
      }
    }
    if (site != netlist::kInvalidArc) break;
  }
  ASSERT_NE(site, netlist::kInvalidArc);
  const auto B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, 11,
                                  std::make_pair(site, 1e6), f.clk);
  ASSERT_TRUE(B.any_failure());
  const Diagnoser diagnoser(f.dict_sim, f.sim, f.lev, f.size_model);
  const auto suspects = diagnoser.extract_suspects(f.patterns, B);
  EXPECT_FALSE(suspects.empty());
  EXPECT_NE(std::find(suspects.begin(), suspects.end(), site),
            suspects.end());
}

TEST(Diagnoser, MaxSuspectsCapRespected) {
  DiagFixture f;
  const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[0]);
  ArcId site = netlist::kInvalidArc;
  for (ArcId a = 0; a < f.nl.arc_count() && site == netlist::kInvalidArc;
       ++a) {
    if (!tg.is_active(a)) continue;
    for (const GateId g : tg.forward_cone(f.nl.arc(a).gate)) {
      if (f.nl.output_index(g) >= 0) {
        site = a;
        break;
      }
    }
  }
  ASSERT_NE(site, netlist::kInvalidArc);
  const auto B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, 2,
                                  std::make_pair(site, 1e6), f.clk);
  ASSERT_TRUE(B.any_failure());
  DiagnoserConfig config;
  config.max_suspects = 5;
  const Diagnoser diagnoser(f.dict_sim, f.sim, f.lev, f.size_model, config);
  EXPECT_LE(diagnoser.extract_suspects(f.patterns, B).size(), 5u);
}

TEST(Diagnoser, ScoresAllMethodsInOnePass) {
  DiagFixture f;
  const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[0]);
  ArcId site = netlist::kInvalidArc;
  for (ArcId a = 0; a < f.nl.arc_count(); ++a) {
    if (!tg.is_active(a)) continue;
    for (const GateId g : tg.forward_cone(f.nl.arc(a).gate)) {
      if (f.nl.output_index(g) >= 0) {
        site = a;
        break;
      }
    }
    if (site != netlist::kInvalidArc) break;
  }
  ASSERT_NE(site, netlist::kInvalidArc);
  const auto B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, 13,
                                  std::make_pair(site, 1e6), f.clk);
  ASSERT_TRUE(B.any_failure());
  const Diagnoser diagnoser(f.dict_sim, f.sim, f.lev, f.size_model);
  const std::vector<Method> methods = {Method::kSimI, Method::kSimII,
                                       Method::kSimIII, Method::kRev};
  const auto result = diagnoser.diagnose(f.patterns, B, methods, f.clk);
  EXPECT_EQ(result.methods.size(), 4u);
  EXPECT_EQ(result.scores.size(), 4u);
  for (const auto& sc : result.scores) {
    EXPECT_EQ(sc.size(), result.suspects.size());
  }
  // Rankings are permutations of the suspect set and respect direction.
  for (const Method m : methods) {
    const auto ranked = result.ranked(m);
    EXPECT_EQ(ranked.size(), result.suspects.size());
    for (std::size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_FALSE(ranks_better(m, ranked[i].score, ranked[i - 1].score));
    }
  }
  // hit_within is consistent with ranked().
  const auto ranked = result.ranked(Method::kRev);
  if (!ranked.empty()) {
    EXPECT_TRUE(result.hit_within(Method::kRev, ranked[0].arc, 1));
    if (ranked.size() > 3) {
      EXPECT_FALSE(result.hit_within(Method::kRev, ranked[3].arc, 2));
    }
  }
  EXPECT_THROW((void)result.ranked(static_cast<Method>(99)),
               std::invalid_argument);
}

TEST(Diagnoser, BigDefectRanksTrueSiteHighly) {
  // With an unmistakably large defect and the dictionary knowing the size
  // model, the true site should rank near the top for Alg_rev.
  DiagFixture f;
  defect::DefectSizeModel big(f.model.mean_cell_delay(), 10.0, 12.0, 0.3, 77);
  const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[0]);
  // Site: the final active arc into the latest-arriving toggling output of
  // pattern 0 - guaranteed observable, minimal masking.
  const auto nominal = timing::nominal_arrivals(tg, f.model, f.lev);
  GateId best_po = netlist::kInvalidGate;
  for (const GateId o : f.nl.outputs()) {
    if (!tg.toggles(o)) continue;
    if (best_po == netlist::kInvalidGate || nominal[o] > nominal[best_po]) {
      best_po = o;
    }
  }
  ASSERT_NE(best_po, netlist::kInvalidGate);
  ASSERT_FALSE(tg.active_fanins(best_po).empty());
  const ArcId site = tg.active_fanins(best_po).front();
  const double size = big.marginal_mean();
  // Scan chip samples until one fails *because of the defect* (a slow chip
  // failing on baseline alone carries no information about the site).
  BehaviorMatrix B(f.nl.outputs().size(), 0);
  bool caused = false;
  for (std::size_t chip = 0; chip < f.inst_field.sample_count() && !caused;
       ++chip) {
    B = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns, chip,
                         std::make_pair(site, size), f.clk);
    if (!B.any_failure()) continue;
    const auto B0 = observe_behavior(f.inst_sim, f.sim, f.lev, f.patterns,
                                     chip, std::nullopt, f.clk);
    for (std::size_t i = 0; i < B.output_count() && !caused; ++i) {
      for (std::size_t j = 0; j < B.pattern_count(); ++j) {
        if (B.at(i, j) && !B0.at(i, j)) {
          caused = true;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(caused) << "no chip fails because of a 4-5x cell-delay defect";
  const Diagnoser diagnoser(f.dict_sim, f.sim, f.lev, big);
  const std::vector<Method> methods = {Method::kRev};
  const auto result = diagnoser.diagnose(f.patterns, B, methods, f.clk);
  // The true arc should be within the top quarter of the suspect list.
  const auto ranked = result.ranked(Method::kRev);
  int rank = -1;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].arc == site) rank = static_cast<int>(i);
  }
  ASSERT_GE(rank, 0);
  // Top quarter of the suspect list, with a floor of 3 for tiny suspect
  // sets (equivalent arcs on the same path can tie ahead of the site).
  EXPECT_LE(rank, std::max(3, static_cast<int>(ranked.size()) / 4 + 1));
}

}  // namespace
}  // namespace sddd::diagnosis
