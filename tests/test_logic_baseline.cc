// Tests for the traditional logic-domain (gross-delay dictionary)
// diagnosis baseline.
#include <gtest/gtest.h>

#include "atpg/pdf_atpg.h"
#include "diagnosis/logic_baseline.h"
#include "eval/experiment.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"

namespace sddd::diagnosis {
namespace {

using netlist::ArcId;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

struct BaselineFixture {
  Netlist nl;
  Levelization lev;
  logicsim::BitSimulator sim;
  std::vector<logicsim::PatternPair> patterns;

  BaselineFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 12;
          spec.n_outputs = 8;
          spec.n_gates = 90;
          spec.depth = 9;
          spec.seed = 901;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        sim(nl, lev) {
    stats::Rng rng(51);
    for (int i = 0; i < 6; ++i) {
      patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
    }
  }
};

TEST(LogicBaseline, SignatureMatchesCones) {
  BaselineFixture f;
  const LogicBaselineDiagnoser baseline(f.sim, f.lev);
  for (ArcId a = 3; a < f.nl.arc_count(); a += 41) {
    const auto sig = baseline.signature(f.patterns, a);
    ASSERT_EQ(sig.size(), f.nl.outputs().size());
    for (std::size_t j = 0; j < f.patterns.size(); ++j) {
      const paths::TransitionGraph tg(f.sim, f.lev, f.patterns[j]);
      for (std::size_t i = 0; i < f.nl.outputs().size(); ++i) {
        const auto cone = tg.cone_to_output(f.nl.outputs()[i]);
        EXPECT_EQ(sig[i][j], static_cast<bool>(cone[a]));
      }
    }
  }
}

TEST(LogicBaseline, PerfectGrossDefectRanksFirst) {
  // If the chip behaves EXACTLY like the gross-delay prediction of some
  // arc (fails every cell the arc can reach), that arc must rank with
  // Hamming distance 0... up to ties with logically equivalent arcs.
  BaselineFixture f;
  const LogicBaselineDiagnoser baseline(f.sim, f.lev);
  // Pick an arc with a non-empty signature.
  for (ArcId a = 0; a < f.nl.arc_count(); ++a) {
    const auto sig = baseline.signature(f.patterns, a);
    std::size_t ones = 0;
    for (const auto& row : sig) {
      for (const bool b : row) ones += b ? 1U : 0U;
    }
    if (ones == 0) continue;
    BehaviorMatrix B(f.nl.outputs().size(), f.patterns.size());
    for (std::size_t i = 0; i < sig.size(); ++i) {
      for (std::size_t j = 0; j < f.patterns.size(); ++j) {
        B.set(i, j, sig[i][j]);
      }
    }
    const auto ranked = baseline.diagnose(f.patterns, B);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().hamming, 0u);
    bool found = false;
    for (const auto& r : ranked) {
      if (r.hamming != 0) break;
      found |= (r.arc == a);
    }
    EXPECT_TRUE(found) << "arc " << a << " not among the distance-0 leaders";
    return;
  }
  FAIL() << "no arc with non-empty signature";
}

TEST(LogicBaseline, RankedByNondecreasingHamming) {
  BaselineFixture f;
  const LogicBaselineDiagnoser baseline(f.sim, f.lev);
  BehaviorMatrix B(f.nl.outputs().size(), f.patterns.size());
  B.set(0, 0, true);
  B.set(3, 2, true);
  const auto ranked = baseline.diagnose(f.patterns, B);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].hamming, ranked[i].hamming);
  }
}

TEST(LogicBaseline, EmptyBehaviorYieldsNoSuspects) {
  BaselineFixture f;
  const LogicBaselineDiagnoser baseline(f.sim, f.lev);
  const BehaviorMatrix B(f.nl.outputs().size(), f.patterns.size());
  EXPECT_TRUE(baseline.diagnose(f.patterns, B).empty());
}

TEST(LogicBaseline, ExperimentRecordsBaselineRanks) {
  netlist::SynthSpec spec;
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 120;
  spec.depth = 10;
  spec.seed = 902;
  const auto nl = netlist::synthesize(spec);
  eval::ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 6;
  config.seed = 31;
  const auto with = eval::run_diagnosis_experiment(nl, config);
  bool any_rank = false;
  for (const auto& t : with.trials) {
    if (t.failed_test && t.logic_baseline_rank >= 0) any_rank = true;
  }
  EXPECT_TRUE(any_rank);
  EXPECT_GE(with.logic_baseline_success_rate(1000), 0.5);

  config.include_logic_baseline = false;
  const auto without = eval::run_diagnosis_experiment(nl, config);
  for (const auto& t : without.trials) {
    EXPECT_EQ(t.logic_baseline_rank, -1);
  }
  EXPECT_DOUBLE_EQ(without.logic_baseline_success_rate(1000), 0.0);
}

}  // namespace
}  // namespace sddd::diagnosis
