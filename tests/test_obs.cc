// Tests for the observability subsystem (src/obs/): deterministic metric
// merges across thread counts, histogram bucket boundaries, trace JSON
// well-formedness, zero-cost disabled paths, contract OBS001, log gating,
// and the per-phase breakdown recorded by the experiment driver.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "netlist/synth.h"
#include "obs/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace {

using namespace sddd;

struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::set_thread_count(0); }
};

struct CheckModeGuard {
  obs::CheckMode prev = obs::check_mode();
  ~CheckModeGuard() { obs::set_check_mode(prev); }
};

struct LogLevelGuard {
  obs::LogLevel prev = obs::log_level();
  ~LogLevelGuard() { obs::set_log_level(prev); }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough to prove the trace and
// metrics writers emit parseable JSON (structure + string escaping), with
// no dependency beyond the standard library.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterMergeDeterministicAcrossThreadCounts) {
  const ThreadCountGuard guard;
  obs::Counter& c = obs::MetricsRegistry::instance().register_counter(
      "test.merge_determinism");
  constexpr std::size_t kItems = 513;
  constexpr std::uint64_t kPerItem = 3;

  std::vector<std::uint64_t> totals;
  for (const std::size_t threads : {1U, 4U}) {
    runtime::set_thread_count(threads);
    const std::uint64_t before = c.value();
    runtime::parallel_for(kItems, [&](std::size_t) { c.add(kPerItem); });
    totals.push_back(c.value() - before);
  }
  EXPECT_EQ(totals[0], kItems * kPerItem);
  EXPECT_EQ(totals[0], totals[1]);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  obs::Histogram& h = obs::MetricsRegistry::instance().register_histogram(
      "test.hist_bounds", bounds);
  ASSERT_EQ(h.bucket_count(), 4U);  // 3 bounds + overflow

  // Bucket i counts v <= bounds[i] (first match); beyond the last bound
  // lands in the overflow bucket.
  h.record(0.5);  // bucket 0
  h.record(1.0);  // bucket 0 (inclusive upper bound)
  h.record(1.5);  // bucket 1
  h.record(2.0);  // bucket 1
  h.record(3.0);  // bucket 2
  h.record(4.0);  // bucket 2
  h.record(5.0);  // overflow

  EXPECT_EQ(h.count_in_bucket(0), 2U);
  EXPECT_EQ(h.count_in_bucket(1), 2U);
  EXPECT_EQ(h.count_in_bucket(2), 2U);
  EXPECT_EQ(h.count_in_bucket(3), 1U);
  EXPECT_EQ(h.total_count(), 7U);

  h.reset();
  EXPECT_EQ(h.total_count(), 0U);
}

TEST(ObsMetrics, HistogramMergeDeterministicAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const std::vector<double> bounds = {10.0, 100.0};
  obs::Histogram& h = obs::MetricsRegistry::instance().register_histogram(
      "test.hist_merge", bounds);
  for (const std::size_t threads : {1U, 4U}) {
    runtime::set_thread_count(threads);
    h.reset();
    runtime::parallel_for(300, [&](std::size_t i) {
      h.record(static_cast<double>(i));  // 0..10 | 11..100 | 101..299
    });
    EXPECT_EQ(h.count_in_bucket(0), 11U);
    EXPECT_EQ(h.count_in_bucket(1), 90U);
    EXPECT_EQ(h.count_in_bucket(2), 199U);
  }
}

TEST(ObsMetrics, DuplicateRegistrationContract) {
  const CheckModeGuard guard;
  obs::set_check_mode(obs::CheckMode::kThrow);

  obs::Counter& first =
      obs::MetricsRegistry::instance().register_counter("test.dup_name");
  first.add(7);
  // Same name, same kind: OBS001, but the existing counter would be
  // returned in warn mode.
  try {
    obs::MetricsRegistry::instance().register_counter("test.dup_name");
    FAIL() << "duplicate registration must throw in kThrow mode";
  } catch (const obs::ContractViolation& e) {
    EXPECT_EQ(e.rule_id(), "OBS001");
  }
  // Same name, different kind: still OBS001.
  EXPECT_THROW(obs::MetricsRegistry::instance().register_gauge("test.dup_name"),
               obs::ContractViolation);

  // In warn mode the existing metric comes back so execution continues.
  obs::set_check_mode(obs::CheckMode::kWarn);
  obs::Counter& again =
      obs::MetricsRegistry::instance().register_counter("test.dup_name");
  EXPECT_EQ(&again, &first);
  EXPECT_EQ(again.value(), 7U);
}

TEST(ObsMetrics, SnapshotJsonParses) {
  obs::MetricsRegistry::instance()
      .register_counter("test.snapshot_counter")
      .add(41);
  obs::MetricsRegistry::instance()
      .register_gauge("test.snapshot \"gauge\"\n")
      .set(2.5);
  std::ostringstream os;
  obs::MetricsRegistry::instance().write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("test.snapshot_counter"), std::string::npos);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter_or("test.snapshot_counter"), 41U);
  EXPECT_EQ(snap.counter_or("test.never_registered", 9U), 9U);
}

TEST(ObsMetrics, ScopedNsTimerAccumulates) {
  obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("test.timer_ns");
  {
    const obs::ScopedNsTimer timer(c);
    // Any work at all; the steady clock has ns resolution so even an empty
    // scope usually lands > 0, but don't rely on that.
    std::atomic<int> sink{0};
    for (int i = 0; i < 1000; ++i) sink.fetch_add(i, std::memory_order_relaxed);
  }
  const std::uint64_t first = c.value();
  EXPECT_GT(first, 0U);
  { const obs::ScopedNsTimer timer(c); }
  EXPECT_GE(c.value(), first);
}

TEST(ObsTrace, DisabledTracerIsNoOp) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  tracer.clear();
  {
    SDDD_SPAN(span, "test.disabled");
    span.arg("k", 1);
  }
  EXPECT_EQ(tracer.event_count(), 0U);
  EXPECT_EQ(tracer.dropped_count(), 0U);
}

TEST(ObsTrace, SpanJsonWellFormed) {
  const ThreadCountGuard tc_guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();
  {
    SDDD_SPAN(outer, "test.outer");
    outer.arg("circuit", std::string_view("s1196\"quoted\""))
        .arg("pattern", 3)
        .arg("weight", 0.25);
    runtime::set_thread_count(4);
    runtime::parallel_for(8, [&](std::size_t i) {
      SDDD_SPAN(inner, "test.inner");
      inner.arg("i", static_cast<std::int64_t>(i));
    });
  }
  tracer.disable();
  if (obs::kTraceCompiledIn) {
    EXPECT_GE(tracer.event_count(), 9U);
  }

  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  }
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0U);
}

TEST(ObsTrace, SpanRecordsOnlyWhenEnabled) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();
  { SDDD_SPAN(span, "test.enabled_once"); }
  tracer.disable();
  const std::size_t with_tracing = tracer.event_count();
  { SDDD_SPAN(span, "test.after_disable"); }
  if (obs::kTraceCompiledIn) {
    EXPECT_EQ(with_tracing, 1U);
  }
  EXPECT_EQ(tracer.event_count(), with_tracing);
  tracer.clear();
}

TEST(ObsLog, LevelParsingAndGating) {
  const LogLevelGuard guard;

  obs::LogLevel level = obs::LogLevel::kError;
  EXPECT_TRUE(obs::parse_log_level("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::parse_log_level("warn", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::parse_log_level("verbose", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);  // untouched on failure

  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));

  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kInfo), "info");
}

// Deliberately NOT in the Obs* families: the runtime smoke filter (TSan
// flavor) excludes it because a full experiment is seconds of work.
TEST(ExperimentPhases, RecordsBreakdown) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(1);

  netlist::SynthSpec spec;
  spec.name = "phases_test";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 120;
  spec.depth = 10;
  spec.seed = 5;
  const auto nl = netlist::synthesize(spec);

  eval::ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 4;
  config.max_suspects = 120;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.site_search_tries = 64;
  config.calibration_sites = 8;
  config.seed = 8;

  const auto result = eval::run_diagnosis_experiment(nl, config);
  const eval::PhaseBreakdown& ph = result.phases;

  // Wall splits are real time, so only sanity bounds hold; the work
  // counters are exact and deterministic.
  EXPECT_GE(ph.setup_seconds, 0.0);
  EXPECT_GE(ph.calibration_seconds, 0.0);
  EXPECT_GT(ph.trials_seconds, 0.0);
  EXPECT_LE(ph.trials_seconds, result.wall_seconds + 1e-6);

  EXPECT_GT(ph.mc_samples, 0U);
  EXPECT_GT(ph.atpg_cpu_seconds, 0.0);
  if (result.diagnosable_trials() > 0) {
    EXPECT_GT(ph.dict_columns_built, 0U);
    EXPECT_GT(ph.phi_evals, 0U);
    EXPECT_GT(ph.score_cpu_seconds, 0.0);
    EXPECT_GT(ph.mc_observe_cpu_seconds, 0.0);
  }
}

}  // namespace
