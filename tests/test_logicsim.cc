// Unit tests for the two-valued bit-parallel simulator and the ternary
// (0/1/X) simulator, including cross-checks between the two and gate-level
// truth-table verification.
#include <gtest/gtest.h>

#include "logicsim/bitsim.h"
#include "logicsim/ternary.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"

namespace sddd::logicsim {
namespace {

using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

TEST(EvalGateWords, TruthTables) {
  const std::uint64_t a = 0b1100;
  const std::uint64_t b = 0b1010;
  const std::vector<std::uint64_t> ab = {a, b};
  EXPECT_EQ(eval_gate_words(CellType::kAnd, ab) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate_words(CellType::kNand, ab) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate_words(CellType::kOr, ab) & 0xF, 0b1110u);
  EXPECT_EQ(eval_gate_words(CellType::kNor, ab) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate_words(CellType::kXor, ab) & 0xF, 0b0110u);
  EXPECT_EQ(eval_gate_words(CellType::kXnor, ab) & 0xF, 0b1001u);
  const std::vector<std::uint64_t> just_a = {a};
  EXPECT_EQ(eval_gate_words(CellType::kBuf, just_a) & 0xF, 0b1100u);
  EXPECT_EQ(eval_gate_words(CellType::kNot, just_a) & 0xF, 0b0011u);
}

TEST(EvalGateWords, WideGates) {
  const std::vector<std::uint64_t> abc = {0b11110000, 0b11001100, 0b10101010};
  EXPECT_EQ(eval_gate_words(CellType::kAnd, abc) & 0xFF, 0b10000000u);
  EXPECT_EQ(eval_gate_words(CellType::kOr, abc) & 0xFF, 0b11111110u);
  EXPECT_EQ(eval_gate_words(CellType::kXor, abc) & 0xFF, 0b10010110u);
}

TEST(EvalGateWords, NonCombinationalThrows) {
  const std::vector<std::uint64_t> a = {0};
  EXPECT_THROW(eval_gate_words(CellType::kInput, a), std::logic_error);
  EXPECT_THROW(eval_gate_words(CellType::kDff, a), std::logic_error);
}

TEST(BitSimulator, C17KnownVectors) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  // c17: 22 = NAND(10, 16), 23 = NAND(16, 19) with
  // 10=NAND(1,3), 11=NAND(3,6), 16=NAND(2,11), 19=NAND(11,7).
  // All-zero inputs: 10=1, 11=1, 16=1, 19=1 -> 22=0, 23=0.
  const Pattern zeros(5, false);
  auto values = sim.simulate_single(zeros);
  EXPECT_FALSE(values[nl.find("22")]);
  EXPECT_FALSE(values[nl.find("23")]);
  // All-one inputs: 10=0, 11=0, 16=1, 19=1 -> 22=1, 23=0.
  const Pattern ones(5, true);
  values = sim.simulate_single(ones);
  EXPECT_TRUE(values[nl.find("22")]);
  EXPECT_FALSE(values[nl.find("23")]);
}

TEST(BitSimulator, RejectsSequentialNetlists) {
  const auto nl = netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  const Levelization lev(nl);
  EXPECT_THROW((BitSimulator{nl, lev}), std::invalid_argument);
}

TEST(BitSimulator, PackUnpackRoundTrip) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(5);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 64; ++i) {
    Pattern p(5);
    for (auto&& bit : p) bit = rng.bernoulli(0.5);
    patterns.push_back(std::move(p));
  }
  const auto words = sim.simulate(sim.pack(patterns));
  for (unsigned k = 0; k < 64; ++k) {
    const auto single = sim.simulate_single(patterns[k]);
    const auto outs = sim.output_values(words, k);
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      EXPECT_EQ(outs[i], single[nl.outputs()[i]]) << "pattern " << k;
    }
  }
}

TEST(BitSimulator, SizeValidation) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  EXPECT_THROW((void)sim.simulate_single(Pattern(4, false)),
               std::invalid_argument);
  std::vector<std::uint64_t> too_few(4, 0);
  EXPECT_THROW((void)sim.simulate(too_few), std::invalid_argument);
}

TEST(Ternary, NotTruthTable) {
  EXPECT_EQ(tern_not(Tern::k0), Tern::k1);
  EXPECT_EQ(tern_not(Tern::k1), Tern::k0);
  EXPECT_EQ(tern_not(Tern::kX), Tern::kX);
}

TEST(Ternary, ControllingShortcut) {
  // AND with a 0 input is 0 even if the others are X.
  const std::vector<Tern> x0 = {Tern::kX, Tern::k0};
  EXPECT_EQ(eval_gate_tern(CellType::kAnd, x0), Tern::k0);
  EXPECT_EQ(eval_gate_tern(CellType::kNand, x0), Tern::k1);
  const std::vector<Tern> x1 = {Tern::kX, Tern::k1};
  EXPECT_EQ(eval_gate_tern(CellType::kOr, x1), Tern::k1);
  EXPECT_EQ(eval_gate_tern(CellType::kNor, x1), Tern::k0);
  // Without a controlling input, X dominates.
  const std::vector<Tern> xs = {Tern::kX, Tern::k1};
  EXPECT_EQ(eval_gate_tern(CellType::kAnd, xs), Tern::kX);
  EXPECT_EQ(eval_gate_tern(CellType::kXor, xs), Tern::kX);
}

TEST(Ternary, DefiniteInputsMatchBoolean) {
  for (const CellType t : {CellType::kAnd, CellType::kNand, CellType::kOr,
                           CellType::kNor, CellType::kXor, CellType::kXnor}) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        const std::vector<Tern> in = {a ? Tern::k1 : Tern::k0,
                                      b ? Tern::k1 : Tern::k0};
        const std::vector<std::uint64_t> words = {
            a ? ~0ULL : 0ULL, b ? ~0ULL : 0ULL};
        const bool expect = (eval_gate_words(t, words) & 1ULL) != 0;
        EXPECT_EQ(eval_gate_tern(t, in), expect ? Tern::k1 : Tern::k0)
            << cell_type_name(t) << " " << a << b;
      }
    }
  }
}

TEST(TernarySimulator, FullyDefiniteMatchesBitSim) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 70;
  spec.depth = 9;
  spec.seed = 41;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const BitSimulator bsim(nl, lev);
  const TernarySimulator tsim(nl, lev);
  stats::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Pattern p(10);
    std::vector<Tern> t(10);
    for (std::size_t i = 0; i < 10; ++i) {
      const bool v = rng.bernoulli(0.5);
      p[i] = v;
      t[i] = v ? Tern::k1 : Tern::k0;
    }
    const auto bvals = bsim.simulate_single(p);
    const auto tvals = tsim.simulate(t);
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      ASSERT_NE(tvals[g], Tern::kX);
      EXPECT_EQ(tvals[g] == Tern::k1, bvals[g]) << "gate " << g;
    }
  }
}

TEST(TernarySimulator, XPropagatesConservatively) {
  // Property: if a ternary value is definite, it must equal the boolean
  // value for EVERY completion of the X inputs.
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  const Levelization lev(nl);
  const BitSimulator bsim(nl, lev);
  const TernarySimulator tsim(nl, lev);
  stats::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Tern> t(5);
    for (auto& v : t) {
      const double u = rng.uniform01();
      v = u < 0.33 ? Tern::k0 : (u < 0.66 ? Tern::k1 : Tern::kX);
    }
    const auto tvals = tsim.simulate(t);
    // Enumerate all completions of the X positions.
    std::vector<std::size_t> xpos;
    for (std::size_t i = 0; i < 5; ++i) {
      if (t[i] == Tern::kX) xpos.push_back(i);
    }
    for (std::size_t mask = 0; mask < (1ULL << xpos.size()); ++mask) {
      Pattern p(5);
      for (std::size_t i = 0; i < 5; ++i) p[i] = (t[i] == Tern::k1);
      for (std::size_t j = 0; j < xpos.size(); ++j) {
        p[xpos[j]] = (mask >> j) & 1;
      }
      const auto bvals = bsim.simulate_single(p);
      for (GateId g = 0; g < nl.gate_count(); ++g) {
        if (tvals[g] != Tern::kX) {
          EXPECT_EQ(tvals[g] == Tern::k1, bvals[g])
              << "gate " << g << " completion " << mask;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sddd::logicsim
