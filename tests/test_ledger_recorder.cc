// Tests for the run ledger (checksummed JSONL records, torn-tail recovery,
// run-to-run diffs) and the flight recorder (ring overflow accounting,
// thread-count-independent event merge, quarantine postmortems that
// cross-link the experiment run_id), plus the histogram quantile
// estimators the postmortem metrics snapshot relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/checkpoint.h"
#include "eval/experiment.h"
#include "introspect/manifest.h"
#include "netlist/synth.h"
#include "obs/faults.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "runtime/parallel_for.h"

namespace sddd {
namespace {

/// Clears the process-wide fault spec on scope exit so a failing test
/// cannot leak injected faults into the rest of the suite.
struct FaultSpecGuard {
  ~FaultSpecGuard() { obs::set_fault_spec(""); }
};

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

obs::LedgerRecord sample_record(const std::string& run_id) {
  obs::LedgerRecord rec;
  rec.run_id = run_id;
  rec.tool = "diagnose";
  rec.circuit = "s1196";
  rec.git_sha = "abc1234";
  rec.seed = 42;
  rec.threads = 4;
  rec.mc_samples = 200;
  rec.n_chips = 20;
  rec.wall_seconds = 12.625;
  rec.phases["setup_s"] = 1.5;
  rec.phases["trials_s"] = 10.0;
  rec.counters["diag.runs"] = 20;
  rec.counters["sig.cache_miss"] = 7;
  rec.peak_rss_kb = 65536;
  rec.manifest_fnv = "00deadbeef001122";
  rec.result_fnv = "1122334455667788";
  rec.result_path = "out/result.json";
  rec.unix_ms = 1754600000000ull;
  return rec;
}

// --- Ledger encode/decode ---

TEST(Ledger, RecordRoundTripsThroughEncode) {
  const obs::LedgerRecord rec = sample_record("0123456789abcdef");
  const std::string line = obs::encode_ledger_record(rec);
  EXPECT_EQ(line.find("{\"crc\":\""), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  obs::LedgerRecord back;
  ASSERT_TRUE(obs::decode_ledger_record(line, &back));
  EXPECT_EQ(back.version, rec.version);
  EXPECT_EQ(back.run_id, rec.run_id);
  EXPECT_EQ(back.tool, rec.tool);
  EXPECT_EQ(back.circuit, rec.circuit);
  EXPECT_EQ(back.git_sha, rec.git_sha);
  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.threads, rec.threads);
  EXPECT_EQ(back.mc_samples, rec.mc_samples);
  EXPECT_EQ(back.n_chips, rec.n_chips);
  EXPECT_DOUBLE_EQ(back.wall_seconds, rec.wall_seconds);
  EXPECT_EQ(back.phases, rec.phases);
  EXPECT_EQ(back.counters, rec.counters);
  EXPECT_EQ(back.peak_rss_kb, rec.peak_rss_kb);
  EXPECT_EQ(back.manifest_fnv, rec.manifest_fnv);
  EXPECT_EQ(back.result_fnv, rec.result_fnv);
  EXPECT_EQ(back.result_path, rec.result_path);
  EXPECT_EQ(back.unix_ms, rec.unix_ms);
}

TEST(Ledger, CorruptionFailsTheChecksum) {
  const std::string line =
      obs::encode_ledger_record(sample_record("0123456789abcdef"));
  obs::LedgerRecord out;
  // Flip one payload byte: crc mismatch.
  std::string corrupt = line;
  corrupt[line.size() / 2] = corrupt[line.size() / 2] == 'x' ? 'y' : 'x';
  EXPECT_FALSE(obs::decode_ledger_record(corrupt, &out));
  // Damage the crc itself.
  std::string bad_crc = line;
  bad_crc[9] = bad_crc[9] == '0' ? '1' : '0';
  EXPECT_FALSE(obs::decode_ledger_record(bad_crc, &out));
  // Structurally hopeless inputs.
  EXPECT_FALSE(obs::decode_ledger_record("", &out));
  EXPECT_FALSE(obs::decode_ledger_record("{\"crc\":\"tooshort\"}", &out));
  EXPECT_FALSE(obs::decode_ledger_record("not json at all", &out));
}

TEST(Ledger, TornTailIsSkippedNotFatal) {
  const auto path = temp_path("ledger_torn.jsonl");
  std::filesystem::remove(path);
  ASSERT_TRUE(obs::append_ledger_record(path.string(),
                                        sample_record("aaaaaaaaaaaaaaaa")));
  ASSERT_TRUE(obs::append_ledger_record(path.string(),
                                        sample_record("bbbbbbbbbbbbbbbb")));
  ASSERT_TRUE(obs::append_ledger_record(path.string(),
                                        sample_record("cccccccccccccccc")));

  // Cut the final line in half, as a crash mid-append would.
  const std::string contents = slurp(path);
  const std::size_t second_nl = contents.find('\n', contents.find('\n') + 1);
  ASSERT_NE(second_nl, std::string::npos);
  const std::size_t keep = second_nl + 1 + (contents.size() - second_nl) / 2;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, keep);
  }

  const obs::LedgerFile ledger = obs::load_ledger(path.string());
  ASSERT_EQ(ledger.records.size(), 2u);
  EXPECT_EQ(ledger.records[0].run_id, "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(ledger.records[1].run_id, "bbbbbbbbbbbbbbbb");
  EXPECT_EQ(ledger.skipped_lines, 1u);

  const auto tail = obs::ledger_tail(path.string());
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->run_id, "bbbbbbbbbbbbbbbb");
  std::filesystem::remove(path);
}

TEST(Ledger, MissingFileIsAnEmptyLedger) {
  const auto path = temp_path("ledger_never_written.jsonl");
  std::filesystem::remove(path);
  EXPECT_TRUE(obs::load_ledger(path.string()).records.empty());
  EXPECT_FALSE(obs::ledger_tail(path.string()).has_value());
}

TEST(Ledger, InvocationRunIdsAreDistinctAndWellFormed) {
  const std::string a = obs::new_invocation_run_id("bench_table1", "abc");
  const std::string b = obs::new_invocation_run_id("bench_table1", "abc");
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);  // same config, distinct invocations
  for (const char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

// --- Run-to-run diff ---

TEST(LedgerDiff, PhasesCountersAndRankStability) {
  obs::LedgerRecord a = sample_record("0123456789abcdef");
  obs::LedgerRecord b = sample_record("0123456789abcdef");
  b.wall_seconds = 25.25;
  b.phases["trials_s"] = 22.0;
  b.phases["score_s"] = 1.0;  // only in B: union must still show it
  b.counters["sig.cache_miss"] = 14;

  const obs::LedgerDiff d = obs::diff_ledger_records(a, b);
  EXPECT_EQ(d.rank_stability, "identical");
  bool saw_score = false;
  for (const auto& row : d.phases) {
    if (row.name == "score_s") {
      saw_score = true;
      EXPECT_DOUBLE_EQ(row.a, 0.0);
      EXPECT_DOUBLE_EQ(row.b, 1.0);
    }
  }
  EXPECT_TRUE(saw_score);

  const std::string text = obs::ledger_diff_to_text(d);
  EXPECT_NE(text.find("trials_s"), std::string::npos) << text;
  EXPECT_NE(text.find("sig.cache_miss"), std::string::npos) << text;
  EXPECT_NE(text.find("identical"), std::string::npos) << text;

  const std::string json = obs::ledger_diff_to_json(d);
  EXPECT_NE(json.find("\"rank_stability\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"phases\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;

  // Same run_id, different result bytes: the determinism contract broke.
  b.result_fnv = "ffffffffffffffff";
  EXPECT_EQ(obs::diff_ledger_records(a, b).rank_stability, "DIFFERS");
  // Different experiments are not comparable for rank stability.
  b.run_id = "fedcba9876543210";
  EXPECT_EQ(obs::diff_ledger_records(a, b).rank_stability,
            "n/a (different run_ids)");
  // No result hash recorded: nothing to compare.
  b = sample_record("0123456789abcdef");
  b.result_fnv.clear();
  EXPECT_EQ(obs::diff_ledger_records(a, b).rank_stability, "unknown");
}

// --- Flight recorder ---

TEST(Recorder, RingOverflowKeepsLastNAndCountsDrops) {
  auto& rec = obs::Recorder::instance();
  rec.clear();
  const std::uint64_t n = obs::Recorder::kRingCapacity + 100;
  for (std::uint64_t i = 0; i < n; ++i) {
    rec.record(obs::EventKind::kTrialBegin, "ovf", i);
  }
  std::uint64_t kept = 0;
  std::uint64_t min_key = n;
  for (const auto& ev : rec.merged_events()) {
    if (std::string(ev.detail) == "ovf") {
      ++kept;
      min_key = std::min(min_key, ev.key);
    }
  }
  EXPECT_EQ(kept, obs::Recorder::kRingCapacity);
  EXPECT_EQ(min_key, n - obs::Recorder::kRingCapacity);  // oldest went first
  EXPECT_GE(rec.dropped_count(), 100u);
  EXPECT_GE(rec.recorded_count(), n);
  rec.clear();
}

TEST(Recorder, DetailLongerThanSlotIsTruncatedNotCorrupted) {
  auto& rec = obs::Recorder::instance();
  rec.clear();
  rec.record(obs::EventKind::kTrialError,
             "a-very-long-error-taxonomy-code-name", 3);
  const auto events = rec.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].detail), "a-very-long-er");  // 14 + NUL
  rec.clear();
}

TEST(Recorder, MergedEventsAreIdenticalAtOneAndFourThreads) {
  auto& rec = obs::Recorder::instance();
  const std::size_t restore_width = runtime::thread_count();

  // The same schedule-independent event set recorded under both widths
  // must merge to byte-identical JSON: events are keyed by work item, not
  // by thread or time.
  const auto record_all = [&rec]() {
    runtime::parallel_for(64, [&rec](std::size_t i) {
      rec.record(obs::EventKind::kTrialBegin, "det", i);
      rec.record(obs::EventKind::kTrialEnd, "det", i, i % 3);
    });
  };
  runtime::set_thread_count(1);
  rec.clear();
  record_all();
  const std::string serial = rec.merged_events_json();

  runtime::set_thread_count(4);
  rec.clear();
  record_all();
  const std::string parallel = rec.merged_events_json();

  runtime::set_thread_count(restore_width);
  rec.clear();
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("trial.begin"), std::string::npos);
}

TEST(Recorder, PostmortemBundleCarriesRunIdAndMetrics) {
  auto& rec = obs::Recorder::instance();
  rec.clear();
  rec.set_run_id("0123456789abcdef");
  rec.record(obs::EventKind::kDeadline, "", 7);
  const std::string bundle = rec.postmortem_json("unit_test");
  EXPECT_NE(bundle.find("\"postmortem_version\""), std::string::npos);
  EXPECT_NE(bundle.find("\"run_id\": \"0123456789abcdef\""),
            std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(bundle.find("\"deadline\""), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\""), std::string::npos);
  rec.set_run_id("");
  rec.clear();
}

TEST(Recorder, DumpPostmortemWithoutPathIsQuietNoop) {
  EXPECT_EQ(obs::postmortem_out_path(), "");
  EXPECT_FALSE(obs::dump_postmortem("nowhere"));
}

// --- Quarantine postmortem end to end ---

TEST(Recorder, QuarantinedTrialDumpsPostmortemCrossLinkedToManifest) {
  FaultSpecGuard guard;
  netlist::SynthSpec spec;
  spec.name = "ledgerq";
  spec.n_inputs = 10;
  spec.n_outputs = 8;
  spec.n_gates = 60;
  spec.depth = 8;
  spec.seed = 11;
  const auto nl = netlist::synthesize(spec);
  eval::ExperimentConfig config;
  config.n_chips = 4;
  config.mc_samples = 40;
  config.seed = 5;
  config.calibration_sites = 6;
  config.max_injection_retries = 40;

  const auto path = temp_path("quarantine_postmortem.json");
  std::filesystem::remove(path);
  obs::Recorder::instance().clear();
  obs::set_postmortem_out_path(path.string());
  obs::set_fault_spec("exp.trial@1");
  const auto result = eval::run_diagnosis_experiment(nl, config);
  obs::set_fault_spec("");
  obs::set_postmortem_out_path("");

  EXPECT_EQ(result.quarantined_trials(), 1u);
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string bundle = slurp(path);
  // The bundle names the reason and the quarantined trial's error event.
  EXPECT_NE(bundle.find("\"reason\": \"trial_quarantined\""),
            std::string::npos)
      << bundle;
  EXPECT_NE(bundle.find("trial.error"), std::string::npos);
  // ... and its run_id is the experiment fingerprint: the same 16-hex id
  // stamped into the run's manifest / result JSON / checkpoint journal.
  const std::string expected_run_id = introspect::to_hex64(
      eval::experiment_fingerprint(nl.name(), config));
  EXPECT_NE(bundle.find("\"run_id\": \"" + expected_run_id + "\""),
            std::string::npos)
      << bundle;
  obs::Recorder::instance().clear();
  std::filesystem::remove(path);
}

// --- Histogram quantiles (the postmortem metrics snapshot's p50/p95/p99) ---

TEST(HistogramQuantiles, InterpolatesInsideBuckets) {
  obs::MetricsSnapshot::HistogramData h;
  h.bounds = {10.0, 100.0};
  h.counts = {10, 0, 0};  // all mass in [0, 10]
  EXPECT_EQ(h.total(), 10u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);

  h.counts = {5, 5, 0};  // half in [0,10], half in (10,100]
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  EXPECT_GT(h.quantile(0.75), 10.0);
  EXPECT_LE(h.quantile(0.75), 100.0);
}

TEST(HistogramQuantiles, OverflowClampsToLastBoundAndEmptyIsZero) {
  obs::MetricsSnapshot::HistogramData h;
  h.bounds = {10.0, 100.0};
  h.counts = {0, 0, 0};
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  h.counts = {0, 0, 8};  // everything escaped the bounds
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
}

TEST(HistogramQuantiles, SnapshotJsonCarriesTheQuantiles) {
  auto& registry = obs::MetricsRegistry::instance();
  const double bounds[] = {1.0, 10.0, 100.0};
  auto& hist = registry.register_histogram("test.ledger_quantiles", bounds);
  hist.record(0.5);
  hist.record(5.0);
  hist.record(50.0);
  std::ostringstream os;
  registry.snapshot().write_json(os);
  const std::string json = os.str();
  const std::size_t at = json.find("test.ledger_quantiles");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(json.find("\"total\"", at), std::string::npos);
  EXPECT_NE(json.find("\"p50\"", at), std::string::npos);
  EXPECT_NE(json.find("\"p95\"", at), std::string::npos);
  EXPECT_NE(json.find("\"p99\"", at), std::string::npos);
}

}  // namespace
}  // namespace sddd
