// Tests for the batch diagnosis server's resilience ladder: deadline
// expiry becomes a typed response (never a hang), bounded backpressure
// sheds with "overloaded" (never an unbounded queue), and a corrupt store
// is quarantined while the healthy ones keep answering - all in-process
// over a real unix socket.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/synth.h"
#include "obs/faults.h"
#include "store/client.h"
#include "store/query.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"

namespace sddd {
namespace {

struct FaultSpecGuard {
  ~FaultSpecGuard() { obs::set_fault_spec(""); }
};

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

netlist::Netlist serve_netlist(const std::string& name, std::uint64_t seed) {
  netlist::SynthSpec spec;
  spec.name = name;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 50;
  spec.depth = 7;
  spec.seed = seed;
  return netlist::synthesize(spec);
}

store::StoreBuildConfig small_config() {
  store::StoreBuildConfig config;
  config.mc_samples = 40;
  config.pattern_sites = 3;
  config.max_patterns = 8;
  config.seed = 31;
  return config;
}

/// Builds a store for `name`, returns its path; chips/request land in
/// `request` (and the expected offline response in `expected` when asked).
std::string build_store_and_request(const std::string& name,
                                    std::uint64_t seed, std::string* request,
                                    std::string* expected = nullptr) {
  const auto nl = serve_netlist(name, seed);
  const auto path = temp_path(name + ".dict");
  store::build_dictionary_store(nl, small_config(), path.string());
  const store::DictionaryStore st(path.string());
  const auto sampled = store::sample_failing_chips(nl, st, 2);
  EXPECT_FALSE(sampled.empty());
  std::vector<store::ChipQuery> chips;
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    chips.push_back(
        store::ChipQuery{"chip" + std::to_string(t), sampled[t].B});
  }
  *request = store::make_diagnose_request(st.run_id(), "e", 5,
                                          /*deadline_ms=*/0, chips);
  if (expected != nullptr) {
    const store::StoreQueryEngine engine(st);
    *expected = store::diagnose_batch_json(engine, chips, true, 5);
  }
  return path.string();
}

TEST(Serve, DeadlineExpiryIsATypedResponse) {
  std::string request;
  const std::string path =
      build_store_and_request("servedl", 61, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("servedl.sock").string();
  cfg.test_hold_seconds = 0.3;  // every request stalls past the deadline
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  // Rewrite the request with a deadline far shorter than the hold.
  std::string with_deadline = request;
  const auto pos = with_deadline.find(",\"chips\":");
  ASSERT_NE(pos, std::string::npos);
  with_deadline.insert(pos, ",\"deadline_ms\":20");
  const std::string response = client.request(with_deadline);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"error\":\"deadline\""), std::string::npos)
      << response;

  // The connection survives the timeout; a health probe still answers.
  const std::string health = client.request("{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos) << health;

  server.request_drain();
  server.wait();
}

TEST(Serve, InjectedDeadlineSeamFiresWithoutWallClock) {
  std::string request;
  const std::string path =
      build_store_and_request("serveseam", 43, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("serveseam.sock").string();
  store::DiagnosisServer server(cfg);
  server.start();

  FaultSpecGuard guard;
  obs::set_fault_spec("serve.deadline@*");
  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  const std::string response = client.request(request);
  EXPECT_NE(response.find("\"error\":\"deadline\""), std::string::npos)
      << response;
  obs::set_fault_spec("");

  const std::string ok = client.request(request);
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;

  server.request_drain();
  server.wait();
}

TEST(Serve, BackpressureShedsWithTypedOverload) {
  std::string request;
  const std::string path =
      build_store_and_request("serveshed", 47, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("serveshed.sock").string();
  cfg.max_inflight = 0;  // deterministic: every diagnose sheds
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  const std::string response = client.request(request);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"error\":\"overloaded\""), std::string::npos)
      << response;

  // Health is not a diagnose, so it bypasses the in-flight budget.
  const std::string health = client.request("{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos) << health;

  server.request_drain();
  server.wait();
}

TEST(Serve, WireBackwardCompatAndTraceEcho) {
  std::string request, expected;
  const std::string path =
      build_store_and_request("servecompat", 67, &request, &expected);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("servecompat.sock").string();
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);

  // Pre-tracing request (no trace_id member): the server mints a
  // canonical 16-hex id and the scored payload is byte-identical to the
  // offline diagnose bytes.
  std::string id1, payload1;
  ASSERT_TRUE(
      store::split_response_envelope(client.request(request), &id1, &payload1));
  EXPECT_EQ(payload1, expected);
  ASSERT_EQ(id1.size(), 16u) << id1;
  for (char c : id1) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << id1;
  }

  // A client-supplied trace id is echoed verbatim, an unknown request
  // field is ignored, and the payload bytes do not change.
  std::string stamped = store::payload_with_trace_id(request, "load-gen.7");
  const auto pos = stamped.find(",\"chips\":");
  ASSERT_NE(pos, std::string::npos);
  stamped.insert(pos, ",\"x_experiment\":\"ignored\"");
  std::string id2, payload2;
  ASSERT_TRUE(
      store::split_response_envelope(client.request(stamped), &id2, &payload2));
  EXPECT_EQ(id2, "load-gen.7");
  EXPECT_EQ(payload2, expected);

  server.request_drain();
  server.wait();
}

TEST(Serve, CorruptStoreIsQuarantinedHealthyOnesServe) {
  std::string good_request, expected;
  const std::string good_path = build_store_and_request(
      "servegood", 53, &good_request, &expected);
  std::string bad_request;
  const std::string bad_path =
      build_store_and_request("servebad", 59, &bad_request);

  // Flip one payload byte of the second store: open() quarantines it.
  {
    std::ifstream in(bad_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x01;
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  store::ServerConfig cfg;
  cfg.store_paths = {good_path, bad_path};
  cfg.unix_socket = temp_path("servequar.sock").string();
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  // Health reports the degradation: one store serving, one quarantined.
  const std::string health = client.request("{\"op\":\"health\"}");
  EXPECT_NE(health.find("\"degraded\":true"), std::string::npos) << health;
  EXPECT_NE(health.find("\"quarantined\""), std::string::npos) << health;

  // The healthy store answers exactly the offline dict-query bytes: the
  // envelope carries a server-minted trace id, the payload is verbatim.
  const std::string response = client.request(good_request);
  std::string trace_id, payload;
  ASSERT_TRUE(store::split_response_envelope(response, &trace_id, &payload))
      << response;
  EXPECT_FALSE(trace_id.empty());
  EXPECT_EQ(payload, expected);

  // Targeting the quarantined store (by path: its header never parsed,
  // so it has no circuit name) is a typed error, not a crash.
  const std::string denied = client.request(
      "{\"op\":\"diagnose\",\"store\":" + store::json_quote(bad_path) +
      ",\"chips\":[]}");
  EXPECT_NE(denied.find("\"error\":\"store_quarantined\""), std::string::npos)
      << denied;

  server.request_drain();
  server.wait();
}

}  // namespace
}  // namespace sddd
