// Tests for the automatic-K selection heuristics (paper future work #2)
// and the multi-defect experiment extension (future work #3).
#include <gtest/gtest.h>

#include "diagnosis/auto_k.h"
#include "eval/experiment.h"
#include "netlist/synth.h"

namespace sddd::diagnosis {
namespace {

/// Builds a synthetic DiagnosisResult with the given ranking keys for one
/// method (keys are also used as scores - adequate for these tests).
DiagnosisResult fake_result(Method m, std::vector<double> keys) {
  DiagnosisResult r;
  r.methods = {m};
  r.suspects.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    r.suspects[i] = static_cast<netlist::ArcId>(i);
  }
  r.scores = {keys};
  r.keys = {std::move(keys)};
  return r;
}

TEST(AutoK, GapCutFindsLeaderCluster) {
  // Three clear leaders, then a cliff.
  const auto r = fake_result(Method::kSimII,
                             {0.9, 0.85, 0.8, 0.1, 0.09, 0.08, 0.07});
  AutoKConfig config;
  config.policy = AutoKPolicy::kGapCut;
  EXPECT_EQ(select_k(r, Method::kSimII, config), 3u);
}

TEST(AutoK, GapCutOnMinimizeMethod) {
  // Alg_rev: smaller is better; two leaders, then a cliff upward.
  const auto r = fake_result(Method::kRev, {0.1, 0.12, 0.9, 0.95, 1.0});
  AutoKConfig config;
  config.policy = AutoKPolicy::kGapCut;
  EXPECT_EQ(select_k(r, Method::kRev, config), 2u);
}

TEST(AutoK, GapCutRespectsMaxK) {
  // Strictly uniform decay far beyond max_k: the largest gap within the
  // window decides, and the answer stays within max_k.
  std::vector<double> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(1.0 - 0.01 * i);
  const auto r = fake_result(Method::kSimII, std::move(keys));
  AutoKConfig config;
  config.policy = AutoKPolicy::kGapCut;
  config.max_k = 5;
  EXPECT_LE(select_k(r, Method::kSimII, config), 5u);
  EXPECT_GE(select_k(r, Method::kSimII, config), 1u);
}

TEST(AutoK, MassCutCoversRequestedMass) {
  // One dominant candidate -> K = 1 at 80% mass.
  const auto dominant =
      fake_result(Method::kSimII, {10.0, 0.5, 0.4, 0.3, 0.2});
  AutoKConfig config;
  config.policy = AutoKPolicy::kMassCut;
  config.mass = 0.8;
  EXPECT_EQ(select_k(dominant, Method::kSimII, config), 1u);
  // Uniform leaders -> K grows.
  const auto flat_top =
      fake_result(Method::kSimII, {1.0, 1.0, 1.0, 1.0, 0.0, 0.0});
  EXPECT_GE(select_k(flat_top, Method::kSimII, config), 3u);
}

TEST(AutoK, MassCutInvertsForRev) {
  const auto r = fake_result(Method::kRev, {0.0, 0.1, 5.0, 5.0, 5.0});
  AutoKConfig config;
  config.policy = AutoKPolicy::kMassCut;
  config.mass = 0.8;
  const auto k = select_k(r, Method::kRev, config);
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, 2u);
}

TEST(AutoK, DegenerateInputs) {
  const auto empty = fake_result(Method::kSimII, {});
  EXPECT_EQ(select_k(empty, Method::kSimII), 1u);
  const auto single = fake_result(Method::kSimII, {0.4});
  EXPECT_EQ(select_k(single, Method::kSimII), 1u);
  const auto flat = fake_result(Method::kSimII, {0.4, 0.4, 0.4});
  EXPECT_GE(select_k(flat, Method::kSimII), 1u);
  EXPECT_THROW((void)select_k(flat, Method::kRev), std::invalid_argument);
}

TEST(MultiDefect, ExperimentRunsAndRecordsExtras) {
  netlist::SynthSpec spec;
  spec.name = "multi";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 120;
  spec.depth = 10;
  spec.seed = 73;
  const auto nl = netlist::synthesize(spec);

  eval::ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 5;
  config.n_defects = 2;
  config.seed = 21;
  const auto r = eval::run_diagnosis_experiment(nl, config);
  EXPECT_EQ(r.trials.size(), 5u);
  for (const auto& t : r.trials) {
    if (!t.failed_test) continue;
    EXPECT_EQ(t.extra_defects.size(), 1u);
    EXPECT_LT(t.extra_defects[0].first, nl.arc_count());
    EXPECT_GT(t.extra_defects[0].second, 0.0);
  }
}

TEST(MultiDefect, SingleDefectConfigHasNoExtras) {
  netlist::SynthSpec spec;
  spec.name = "single";
  spec.n_inputs = 14;
  spec.n_outputs = 8;
  spec.n_gates = 100;
  spec.depth = 9;
  spec.seed = 74;
  const auto nl = netlist::synthesize(spec);
  eval::ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 3;
  config.seed = 22;
  const auto r = eval::run_diagnosis_experiment(nl, config);
  for (const auto& t : r.trials) {
    EXPECT_TRUE(t.extra_defects.empty());
  }
}

}  // namespace
}  // namespace sddd::diagnosis
