// End-to-end smoke tests: the full inject -> test -> diagnose pipeline on
// small circuits.  These catch wiring bugs between subsystems; accuracy
// shapes are validated by the Table I bench and test_experiment.cc.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "netlist/iscas_catalog.h"
#include "netlist/bench_io.h"
#include "netlist/scan.h"
#include "netlist/synth.h"

namespace sddd {
namespace {

eval::ExperimentConfig quick_config() {
  eval::ExperimentConfig config;
  config.mc_samples = 64;
  config.n_chips = 4;
  config.max_suspects = 100;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.random_patterns = 3;
  config.seed = 7;
  return config;
}

TEST(IntegrationSmoke, SyntheticCircuitPipelineRuns) {
  netlist::SynthSpec spec;
  spec.name = "smoke";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 80;
  spec.depth = 10;
  spec.seed = 3;
  const auto nl = netlist::synthesize(spec);

  const auto result = eval::run_diagnosis_experiment(nl, quick_config());
  EXPECT_EQ(result.trials.size(), 4u);
  EXPECT_GT(result.clk, 0.0);
  // At least one chip should fail and be diagnosed on a circuit this dense.
  EXPECT_GE(result.diagnosable_trials(), 1u);
  for (const auto& t : result.trials) {
    if (!t.failed_test) continue;
    EXPECT_GT(t.n_patterns, 0u);
    EXPECT_GT(t.n_suspects, 0u);
    EXPECT_GT(t.n_failing_cells, 0u);
  }
}

TEST(IntegrationSmoke, S27PipelineRuns) {
  const auto seq = netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  const auto nl = netlist::full_scan_transform(seq);
  EXPECT_EQ(nl.dff_count(), 0u);

  auto config = quick_config();
  config.n_chips = 6;
  const auto result = eval::run_diagnosis_experiment(nl, config);
  EXPECT_EQ(result.trials.size(), 6u);
}

TEST(IntegrationSmoke, TrueArcUsuallyInSuspectSet) {
  netlist::SynthSpec spec;
  spec.name = "smoke2";
  spec.n_inputs = 20;
  spec.n_outputs = 12;
  spec.n_gates = 120;
  spec.depth = 12;
  spec.seed = 11;
  const auto nl = netlist::synthesize(spec);

  auto config = quick_config();
  config.n_chips = 8;
  const auto result = eval::run_diagnosis_experiment(nl, config);
  std::size_t diagnosable = 0;
  std::size_t contained = 0;
  for (const auto& t : result.trials) {
    if (!t.failed_test) continue;
    ++diagnosable;
    contained += t.true_arc_in_suspects ? 1U : 0U;
  }
  ASSERT_GT(diagnosable, 0u);
  // The cause-effect pruning must keep the true site in S for most chips
  // (it lies on an active path to a failing output by construction of the
  // failure).
  EXPECT_GE(contained * 2, diagnosable);
}

}  // namespace
}  // namespace sddd
