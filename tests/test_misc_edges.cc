// Edge-case and small-surface tests that round out coverage of the public
// API: string renderings, operator overloads, error paths and degenerate
// inputs that the mainline tests do not reach.
#include <gtest/gtest.h>

#include <sstream>

#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "logicsim/ternary.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/scan.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/rv.h"
#include "stats/sample_vector.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"

namespace sddd {
namespace {

TEST(RvToString, MentionsFamilyAndParameters) {
  EXPECT_NE(stats::RandomVariable::PointMass(3.0).to_string().find("PointMass"),
            std::string::npos);
  EXPECT_NE(stats::RandomVariable::Normal(10, 2).to_string().find("Normal"),
            std::string::npos);
  EXPECT_NE(stats::RandomVariable::Uniform(1, 2).to_string().find("Uniform"),
            std::string::npos);
  EXPECT_NE(stats::RandomVariable::Triangular(1, 2, 3).to_string().find(
                "Triangular"),
            std::string::npos);
  EXPECT_NE(stats::RandomVariable::LogNormalMeanSigma(5, 1).to_string().find(
                "LogNormal"),
            std::string::npos);
}

TEST(RvDegenerate, ZeroSpreadCollapsesToPointMass) {
  const auto n = stats::RandomVariable::Normal(5.0, 0.0);
  EXPECT_EQ(n.kind(), stats::RvKind::kPointMass);
  const auto u = stats::RandomVariable::Uniform(4.0, 4.0);
  EXPECT_EQ(u.kind(), stats::RvKind::kPointMass);
  const auto ln = stats::RandomVariable::LogNormalMeanSigma(4.0, 0.0);
  EXPECT_EQ(ln.kind(), stats::RvKind::kPointMass);
}

TEST(RvShift, ClampsAtZero) {
  const auto rv = stats::RandomVariable::PointMass(2.0).shifted(-5.0);
  EXPECT_DOUBLE_EQ(rv.mean(), 0.0);
  const auto u = stats::RandomVariable::Uniform(1.0, 2.0).shifted(-10.0);
  EXPECT_DOUBLE_EQ(u.mean(), 0.0);
}

TEST(SampleVector, ScaleAndShiftOperators) {
  stats::SampleVector v(std::vector<double>{1.0, 2.0, 3.0});
  v *= 2.0;
  v += 1.0;
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[2], 7.0);
  EXPECT_DOUBLE_EQ(v.min(), 3.0);
  EXPECT_DOUBLE_EQ(v.max_value(), 7.0);
}

TEST(SampleVector, EmptyBehaviors) {
  const stats::SampleVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.mean(), 0.0);
  EXPECT_DOUBLE_EQ(v.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(v.critical_probability(1.0), 0.0);
}

TEST(Histogram, MassAboveMatchesManualSum) {
  const stats::SampleVector v(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  const stats::Histogram h(v, 8, 0.5, 8.5);
  EXPECT_NEAR(h.mass_above(4.0), 5.0 / 8.0, 1e-9);
  EXPECT_NEAR(h.mass_above(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.mass_above(9.0), 0.0, 1e-9);
  EXPECT_THROW((stats::Histogram{v, 0, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((stats::Histogram{v, 4, 2.0, 1.0}), std::invalid_argument);
}

TEST(NetlistSummary, MentionsCounts) {
  const auto nl = netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  const auto s = nl.summary();
  EXPECT_NE(s.find("s27"), std::string::npos);
  EXPECT_NE(s.find("4 PI"), std::string::npos);
  EXPECT_NE(s.find("3 DFF"), std::string::npos);
}

TEST(NetlistDefine, Errors) {
  netlist::Netlist nl;
  const auto a = nl.add_input("a");
  EXPECT_THROW(nl.define(a, netlist::CellType::kNot, {a}), std::logic_error);
  EXPECT_THROW(nl.define(99, netlist::CellType::kNot, {a}),
               std::invalid_argument);
  const auto d = nl.declare("d");
  EXPECT_THROW(nl.define(d, netlist::CellType::kAnd, {a}),
               std::invalid_argument);  // arity
}

TEST(Scan, DuplicatePseudoOutputsAllowed) {
  // A DFF whose D input also drives a PO: the net appears twice in the
  // output list after the transform; both observations are legitimate.
  netlist::Netlist nl("dup");
  const auto a = nl.add_input("a");
  const auto g = nl.add_gate(netlist::CellType::kNot, "g", {a});
  const auto ff = nl.add_gate(netlist::CellType::kDff, "ff", {g});
  nl.add_output(g);
  nl.add_output(ff);
  nl.freeze();
  const auto core = netlist::full_scan_transform(nl);
  EXPECT_EQ(core.outputs().size(), 3u);  // g (PO), ff->pseudo..., g again
  EXPECT_EQ(core.dff_count(), 0u);
}

TEST(CellLibrary, ConfigValidation) {
  timing::CellLibraryConfig config;
  config.three_sigma_pct = -0.1;
  EXPECT_THROW((timing::StatisticalCellLibrary{config}), std::invalid_argument);
  config = timing::CellLibraryConfig{};
  config.arity_factor = 0.0;
  EXPECT_THROW((timing::StatisticalCellLibrary{config}), std::invalid_argument);
}

TEST(DelayField, ConstructorValidation) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  EXPECT_THROW((timing::DelayField{model, 0, 0.0, 1}), std::invalid_argument);
  EXPECT_THROW((timing::DelayField{model, 10, -0.5, 1}),
               std::invalid_argument);
}

TEST(BehaviorMatrix, FailingOutputGates) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  diagnosis::BehaviorMatrix B(nl.outputs().size(), 2);
  B.set(1, 0, true);
  const auto gates = B.failing_output_gates(nl, 0);
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0], nl.outputs()[1]);
  EXPECT_TRUE(B.failing_output_gates(nl, 1).empty());
}

TEST(DefectModel, SegmentAccessors) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  const auto model = defect::SegmentDefectModel::uniform_single(
      nl, stats::RandomVariable::PointMass(5.0));
  EXPECT_EQ(&model.netlist(), &nl);
  EXPECT_DOUBLE_EQ(model.size_rv(0).mean(), 5.0);
}

TEST(Ternary, SimulatorRejectsSequential) {
  const auto nl = netlist::parse_bench_string(netlist::s27_bench_text());
  const netlist::Levelization lev(nl);
  EXPECT_THROW((logicsim::TernarySimulator{nl, lev}), std::invalid_argument);
}

TEST(IscasCatalog, EmbeddedTextsParse) {
  EXPECT_NO_THROW(netlist::parse_bench_string(netlist::c17_bench_text()));
  EXPECT_NO_THROW(netlist::parse_bench_string(netlist::s27_bench_text()));
}

}  // namespace
}  // namespace sddd
