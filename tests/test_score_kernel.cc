// Tests for the packed scoring kernel and the signature-column cache: the
// kernel's contract is BIT-IDENTITY with the scalar phi()/diagnose() path
// (score_kernel.h states the argument; these tests enforce it), so every
// floating-point comparison here is exact equality, never a tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "atpg/pdf_atpg.h"
#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "diagnosis/error_fn.h"
#include "diagnosis/score_kernel.h"
#include "diagnosis/signature_matrix.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "stats/sample_vector.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {
namespace {

using logicsim::BitSimulator;
using logicsim::PatternPair;
using netlist::ArcId;
using netlist::Levelization;
using netlist::Netlist;

struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::set_thread_count(0); }
};

// --- PackedBColumn -------------------------------------------------------

TEST(PackedBColumn, MatchesBehaviorMatrixBits) {
  // Widths straddling the 64-bit word boundary, including 0.
  for (const std::size_t n_outputs : {0, 1, 7, 63, 64, 65, 130}) {
    BehaviorMatrix B(n_outputs, 3);
    stats::Rng rng(41 + n_outputs);
    for (std::size_t i = 0; i < n_outputs; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        B.set(i, j, rng.below(3) == 0);
      }
    }
    PackedBColumn packed;
    for (std::size_t j = 0; j < 3; ++j) {
      packed.pack(B, j);
      ASSERT_EQ(packed.bit_count(), n_outputs);
      for (std::size_t i = 0; i < n_outputs; ++i) {
        EXPECT_EQ(packed.test(i), B.at(i, j)) << "output " << i;
      }
    }
  }
}

// --- phi_block vs the scalar phi() ---------------------------------------

TEST(PhiBlock, BitIdenticalToScalarPhi) {
  // Column counts around the 8-lane block boundary, widths around the
  // 64-bit word boundary; random probability columns and fail bits.
  for (const std::size_t n_cols : {1, 7, 8, 9, 17}) {
    for (const std::size_t n_outputs : {0, 1, 7, 63, 64, 65, 130}) {
      stats::Rng rng(7 * n_cols + n_outputs);
      std::vector<std::vector<double>> cols(n_cols,
                                            std::vector<double>(n_outputs));
      std::vector<const double*> ptrs(n_cols);
      for (std::size_t c = 0; c < n_cols; ++c) {
        for (double& s : cols[c]) s = rng.uniform01();
        ptrs[c] = cols[c].data();
      }
      BehaviorMatrix B(n_outputs, 1);
      std::vector<bool> b_bits(n_outputs);
      for (std::size_t i = 0; i < n_outputs; ++i) {
        const bool fails = rng.below(2) == 0;
        b_bits[i] = fails;
        B.set(i, 0, fails);
      }
      PackedBColumn packed;
      packed.pack(B, 0);

      std::vector<double> out(n_cols, -1.0);
      phi_block(ptrs.data(), n_cols, n_outputs, packed, out.data());
      for (std::size_t c = 0; c < n_cols; ++c) {
        EXPECT_EQ(out[c], phi(cols[c], b_bits))
            << "n_cols=" << n_cols << " n_outputs=" << n_outputs
            << " col=" << c;
      }
    }
  }
}

TEST(PhiBlock, AllZeroColumnsAndEmptyPatternSet) {
  // An all-zero signature predicts "no failures": phi is 1 when the chip
  // passes everywhere and exactly 0 at the first failing bit.
  const std::size_t n_outputs = 70;
  std::vector<double> zeros(n_outputs, 0.0);
  std::vector<const double*> ptrs(9, zeros.data());

  BehaviorMatrix pass(n_outputs, 1);
  PackedBColumn packed;
  packed.pack(pass, 0);
  std::vector<double> out(ptrs.size(), -1.0);
  phi_block(ptrs.data(), ptrs.size(), n_outputs, packed, out.data());
  for (const double v : out) EXPECT_EQ(v, 1.0);

  BehaviorMatrix fail(n_outputs, 1);
  fail.set(69, 0, true);
  packed.pack(fail, 0);
  phi_block(ptrs.data(), ptrs.size(), n_outputs, packed, out.data());
  for (const double v : out) EXPECT_EQ(v, 0.0);

  // Empty TP degenerates to the empty product.
  phi_block(ptrs.data(), ptrs.size(), 0, packed, out.data());
  for (const double v : out) EXPECT_EQ(v, 1.0);
}

// --- Full-stack: cached kernel diagnose() vs the scalar reference --------

struct KernelFixture {
  Netlist nl;
  Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField dict_field;
  timing::DelayField inst_field;
  BitSimulator sim;
  timing::DynamicTimingSimulator dict_sim;
  timing::DynamicTimingSimulator inst_sim;
  defect::DefectSizeModel size_model;
  std::vector<PatternPair> patterns;
  double clk = 0.0;
  std::vector<Method> methods = {Method::kSimI, Method::kSimII,
                                 Method::kSimIII, Method::kRev};

  KernelFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 14;
          spec.n_outputs = 10;
          spec.n_gates = 110;
          spec.depth = 10;
          spec.seed = 113;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        model(nl, lib),
        dict_field(model, 120, 0.03, 1001),
        inst_field(model, 120, 0.03, 1002),
        sim(nl, lev),
        dict_sim(dict_field, lev),
        inst_sim(inst_field, lev),
        size_model(model.mean_cell_delay(), 0.5, 1.0, 0.5, 1003) {
    stats::Rng rng(1004);
    for (int i = 0; i < 8; ++i) {
      patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
    }
    stats::SampleVector delta(dict_field.sample_count(), 0.0);
    for (const auto& p : patterns) {
      const paths::TransitionGraph tg(sim, lev, p);
      const auto m = dict_sim.simulate(tg);
      delta.max_with(dict_sim.induced_delay(tg, m));
    }
    clk = delta.quantile(0.9);
  }

  /// A chip that observably fails: a defect near `preferred` (the random
  /// patterns do not sensitize every arc, so scan forward to one they do),
  /// size escalated until the behavior matrix shows a failing cell.
  BehaviorMatrix failing_chip(ArcId preferred, std::size_t sample_index) const {
    for (ArcId offset = 0; offset < nl.arc_count(); ++offset) {
      const auto arc =
          static_cast<ArcId>((preferred + offset) % nl.arc_count());
      double size = size_model.marginal_mean();
      for (int tries = 0; tries < 12; ++tries) {
        auto B = observe_behavior(inst_sim, sim, lev, patterns, sample_index,
                                  std::make_pair(arc, size), clk);
        if (B.any_failure()) return B;
        size *= 2.0;
      }
    }
    ADD_FAILURE() << "no arc yields a failing chip";
    return BehaviorMatrix(nl.outputs().size(), patterns.size());
  }

  DiagnosisResult diagnose(const BehaviorMatrix& B,
                           const SignatureCache* cache) const {
    DiagnoserConfig config;
    config.capture_phi = true;
    config.cache = cache;
    const Diagnoser d(dict_sim, sim, lev, size_model, config);
    return d.diagnose(patterns, B, methods, clk);
  }
};

void expect_identical(const DiagnosisResult& a, const DiagnosisResult& b) {
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.scores, b.scores);  // exact: bit-identity is the contract
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.phi, b.phi);
  for (const Method m : a.methods) {
    const auto ra = a.ranked(m);
    const auto rb = b.ranked(m);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].arc, rb[i].arc);
      EXPECT_EQ(ra[i].score, rb[i].score);
    }
  }
}

TEST(SignatureCache, KernelPathBitIdenticalToScalar) {
  const KernelFixture f;
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             /*match_on_total_probability=*/true);
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 2);
  const auto B = f.failing_chip(arc, 0);
  expect_identical(f.diagnose(B, nullptr), f.diagnose(B, &cache));
}

TEST(SignatureCache, ColumnsReusedAcrossChips) {
  const KernelFixture f;
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             true);
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 3);
  const auto B = f.failing_chip(arc, 0);

  const auto first = f.diagnose(B, &cache);
  const auto after_first = cache.stats();
  EXPECT_GT(after_first.misses, 0U);
  EXPECT_GT(after_first.bytes, 0U);
  EXPECT_EQ(cache.output_count(), f.nl.outputs().size());

  // A second chip with the same behavior shape re-asks for the same
  // (pattern, suspect) columns: all hits, zero new builds or bytes.
  const auto second = f.diagnose(B, &cache);
  const auto after_second = cache.stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.bytes, after_first.bytes);
  EXPECT_GT(after_second.hits, after_first.hits);
  expect_identical(first, second);

  // A different chip still scores bit-identically to its own scalar run.
  const auto B2 = f.failing_chip(static_cast<ArcId>(f.nl.arc_count() / 5), 1);
  expect_identical(f.diagnose(B2, nullptr), f.diagnose(B2, &cache));
}

TEST(SignatureCache, ByteIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  const KernelFixture f;
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 2);
  const auto B = f.failing_chip(arc, 2);

  runtime::set_thread_count(1);
  const SignatureCache cache1(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                              true);
  const auto serial = f.diagnose(B, &cache1);

  runtime::set_thread_count(4);
  f.dict_sim.prewarm();
  const SignatureCache cache4(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                              true);
  const auto parallel = f.diagnose(B, &cache4);

  expect_identical(serial, parallel);
}

TEST(SignatureCache, SharedCacheAcrossParallelChips) {
  // The experiment-loop shape: one cache, many chips diagnosed by parallel
  // workers.  Every chip must score exactly as its own serial scalar run.
  const ThreadCountGuard guard;
  const KernelFixture f;
  constexpr std::size_t kChips = 4;
  std::vector<BehaviorMatrix> chips;
  std::vector<DiagnosisResult> scalar;
  for (std::size_t c = 0; c < kChips; ++c) {
    const auto arc =
        static_cast<ArcId>((c + 1) * f.nl.arc_count() / (kChips + 2));
    chips.push_back(f.failing_chip(arc, c));
    scalar.push_back(f.diagnose(chips.back(), nullptr));
  }

  runtime::set_thread_count(4);
  f.dict_sim.prewarm();
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             true);
  std::vector<DiagnosisResult> kernel(kChips);
  runtime::parallel_for(kChips, [&](std::size_t c) {
    kernel[c] = f.diagnose(chips[c], &cache);
  });
  for (std::size_t c = 0; c < kChips; ++c) {
    expect_identical(scalar[c], kernel[c]);
  }
}

TEST(SignatureCache, SignatureMatchModeAlsoBitIdentical) {
  const KernelFixture f;
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             /*match_on_total_probability=*/false);
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 2);
  const auto B = f.failing_chip(arc, 0);
  DiagnoserConfig config;
  config.capture_phi = true;
  config.match_on_total_probability = false;
  const Diagnoser scalar(f.dict_sim, f.sim, f.lev, f.size_model, config);
  config.cache = &cache;
  const Diagnoser kernel(f.dict_sim, f.sim, f.lev, f.size_model, config);
  expect_identical(scalar.diagnose(f.patterns, B, f.methods, f.clk),
                   kernel.diagnose(f.patterns, B, f.methods, f.clk));
}

TEST(SignatureCache, MismatchedCacheRejected) {
  const KernelFixture f;
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             true);
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 2);
  const auto B = f.failing_chip(arc, 0);

  DiagnoserConfig config;
  config.cache = &cache;
  const Diagnoser d(f.dict_sim, f.sim, f.lev, f.size_model, config);
  EXPECT_THROW((void)d.diagnose(f.patterns, B, f.methods, f.clk * 1.25),
               std::invalid_argument);

  config.match_on_total_probability = false;  // cache built with true
  const Diagnoser d2(f.dict_sim, f.sim, f.lev, f.size_model, config);
  EXPECT_THROW((void)d2.diagnose(f.patterns, B, f.methods, f.clk),
               std::invalid_argument);
}

TEST(SignatureCache, SizesMatchModelSamples) {
  const KernelFixture f;
  const SignatureCache cache(f.dict_sim, f.sim, f.lev, f.size_model, f.clk,
                             true);
  const ArcId arc = static_cast<ArcId>(f.nl.arc_count() / 4);
  const auto sizes = cache.sizes_for(arc);
  ASSERT_EQ(sizes.size(), f.dict_field.sample_count());
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    EXPECT_EQ(sizes[k], f.size_model.sample(arc, k));
  }
  // Same span on re-lookup: pointer-stable across map growth.
  for (ArcId a = 0; a < 32 && a < f.nl.arc_count(); ++a) {
    (void)cache.sizes_for(a);
  }
  EXPECT_EQ(cache.sizes_for(arc).data(), sizes.data());
}

}  // namespace
}  // namespace sddd::diagnosis
