// Unit tests for defect models and injection: hierarchical size model
// (paper Section I parameters), segment-oriented occurrence distributions,
// the single-defect constraint, and injector determinism.
#include <gtest/gtest.h>

#include "defect/defect_model.h"
#include "defect/injector.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "stats/rng.h"
#include "stats/sample_vector.h"

namespace sddd::defect {
namespace {

using netlist::ArcId;
using stats::RandomVariable;
using stats::Rng;

TEST(DefectSizeModel, PaperDefaultRanges) {
  const auto model = DefectSizeModel::paper_default(100.0, 1);
  EXPECT_DOUBLE_EQ(model.unit(), 100.0);
  EXPECT_DOUBLE_EQ(model.marginal_mean(), 75.0);  // (50 + 100) / 2
}

TEST(DefectSizeModel, SamplesNonNegativeAndInRange) {
  const auto model = DefectSizeModel::paper_default(100.0, 2);
  double lo = 1e9;
  double hi = -1e9;
  double sum = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    const double s = model.sample(7, k);
    EXPECT_GE(s, 0.0);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    sum += s;
  }
  // Mean ~ 75; sizes concentrate in [50*(1-0.5), 100*(1+0.5)].
  EXPECT_NEAR(sum / n, 75.0, 2.0);
  EXPECT_GT(lo, 10.0);
  EXPECT_LT(hi, 180.0);
}

TEST(DefectSizeModel, CounterBasedDeterminism) {
  const auto model = DefectSizeModel::paper_default(100.0, 3);
  for (int k = 0; k < 100; ++k) {
    EXPECT_DOUBLE_EQ(model.sample(5, k), model.sample(5, k));
  }
  // Different salts (suspect arcs) give different streams.
  int diff = 0;
  for (int k = 0; k < 100; ++k) {
    diff += (model.sample(5, k) != model.sample(6, k)) ? 1 : 0;
  }
  EXPECT_GT(diff, 95);
}

TEST(DefectSizeModel, InstanceRvRespectsThreeSigma) {
  const auto model = DefectSizeModel::paper_default(100.0, 4);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto rv = model.draw_instance_rv(rng);
    EXPECT_GE(rv.mean(), 50.0 - 1e-9);
    EXPECT_LE(rv.mean(), 100.0 + 1e-9);
    // 3 sigma = 50% of the drawn mean.
    EXPECT_NEAR(rv.stddev() * 3.0, rv.mean() * 0.5, 1e-9);
  }
}

TEST(DefectSizeModel, BadParametersThrow) {
  EXPECT_THROW(DefectSizeModel(0.0, 0.5, 1.0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(DefectSizeModel(1.0, 0.9, 0.5, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(DefectSizeModel(1.0, 0.5, 1.0, -0.1, 1), std::invalid_argument);
}

TEST(SegmentDefectModel, UniformSingleIsSingleDefect) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  const auto model = SegmentDefectModel::uniform_single(
      nl, RandomVariable::PointMass(10.0));
  EXPECT_TRUE(model.is_single_defect());
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    EXPECT_DOUBLE_EQ(model.occurrence(a), 1.0 / nl.arc_count());
    EXPECT_DOUBLE_EQ(model.size_rv(a).mean(), 10.0);
  }
}

TEST(SegmentDefectModel, DrawLocationFollowsOccurrence) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  std::vector<RandomVariable> sizes(nl.arc_count(),
                                    RandomVariable::PointMass(1.0));
  std::vector<double> occ(nl.arc_count(), 0.0);
  occ[3] = 0.75;
  occ[7] = 0.25;
  const SegmentDefectModel model(nl, std::move(sizes), std::move(occ));
  EXPECT_TRUE(model.is_single_defect());
  Rng rng(6);
  int hits3 = 0;
  int hits7 = 0;
  for (int i = 0; i < 10000; ++i) {
    const ArcId a = model.draw_location(rng);
    ASSERT_TRUE(a == 3 || a == 7);
    (a == 3 ? hits3 : hits7) += 1;
  }
  EXPECT_NEAR(hits3 / 10000.0, 0.75, 0.02);
  EXPECT_NEAR(hits7 / 10000.0, 0.25, 0.02);
}

TEST(SegmentDefectModel, ValidationErrors) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  std::vector<RandomVariable> sizes(3, RandomVariable::PointMass(1.0));
  std::vector<double> occ(3, 0.1);
  EXPECT_THROW(SegmentDefectModel(nl, std::move(sizes), std::move(occ)),
               std::invalid_argument);
  std::vector<RandomVariable> sizes2(nl.arc_count(),
                                     RandomVariable::PointMass(1.0));
  std::vector<double> occ2(nl.arc_count(), 1.5);
  EXPECT_THROW(SegmentDefectModel(nl, std::move(sizes2), std::move(occ2)),
               std::invalid_argument);
}

TEST(Injector, DrawsWithinRangesAndDeterministic) {
  const auto nl = netlist::parse_bench_string(netlist::c17_bench_text());
  const auto size_model = DefectSizeModel::paper_default(100.0, 9);
  const auto loc = SegmentDefectModel::uniform_single(
      nl, RandomVariable::PointMass(1.0));
  const DefectInjector injector(loc, size_model);
  Rng rng_a(42);
  Rng rng_b(42);
  for (int i = 0; i < 50; ++i) {
    const auto chip_a = injector.draw(128, rng_a);
    const auto chip_b = injector.draw(128, rng_b);
    EXPECT_EQ(chip_a.defect_arc, chip_b.defect_arc);
    EXPECT_DOUBLE_EQ(chip_a.defect_size, chip_b.defect_size);
    EXPECT_EQ(chip_a.sample_index, chip_b.sample_index);
    EXPECT_LT(chip_a.sample_index, 128u);
    EXPECT_LT(chip_a.defect_arc, nl.arc_count());
    EXPECT_GE(chip_a.defect_size, 0.0);
    EXPECT_GE(chip_a.size_mean, 50.0 - 1e-9);
    EXPECT_LE(chip_a.size_mean, 100.0 + 1e-9);
  }
  EXPECT_THROW((void)injector.draw(0, rng_a), std::invalid_argument);
}

}  // namespace
}  // namespace sddd::defect
