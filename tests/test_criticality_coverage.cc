// Tests for criticality analysis, statistical coverage and diagnostic
// pattern selection.
#include <gtest/gtest.h>

#include <numeric>

#include "atpg/diag_patterns.h"
#include "defect/defect_model.h"
#include "diagnosis/pattern_select.h"
#include "eval/coverage.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/criticality.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd {
namespace {

using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

TEST(Criticality, ChainIsFullyCritical) {
  Netlist nl("chain");
  const auto a = nl.add_input("a");
  GateId prev = a;
  for (int i = 0; i < 4; ++i) {
    prev = nl.add_gate(CellType::kBuf, "b" + std::to_string(i), {prev});
  }
  nl.add_output(prev);
  nl.freeze();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 50, 0.0, 3);
  const timing::CriticalityAnalysis crit(field, lev);
  for (ArcId arc = 0; arc < nl.arc_count(); ++arc) {
    EXPECT_DOUBLE_EQ(crit.arc_criticality(arc), 1.0);
  }
  EXPECT_DOUBLE_EQ(crit.output_criticality(prev), 1.0);
}

TEST(Criticality, DominantBranchWins) {
  // Two parallel branches into independent outputs; the longer one owns
  // (almost) all criticality.
  Netlist nl("branch");
  const auto a = nl.add_input("a");
  GateId lng = a;
  for (int i = 0; i < 6; ++i) {
    lng = nl.add_gate(CellType::kBuf, "L" + std::to_string(i), {lng});
  }
  const auto sht = nl.add_gate(CellType::kBuf, "S", {a});
  nl.add_output(lng);
  nl.add_output(sht);
  nl.freeze();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 300, 0.03, 5);
  const timing::CriticalityAnalysis crit(field, lev);
  EXPECT_GT(crit.output_criticality(lng), 0.999);
  EXPECT_LT(crit.output_criticality(sht), 0.001);
  EXPECT_LT(crit.arc_criticality(nl.arc_of(sht, 0)), 0.001);
}

TEST(Criticality, RankedArcsSortedAndMassConserved) {
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 110;
  spec.depth = 11;
  spec.seed = 801;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 200, 0.03, 7);
  const timing::CriticalityAnalysis crit(field, lev);
  const auto ranked = crit.ranked_arcs();
  ASSERT_EQ(ranked.size(), nl.arc_count());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(crit.arc_criticality(ranked[i - 1]),
              crit.arc_criticality(ranked[i]));
  }
  // Every sample has exactly one critical path; total output criticality
  // is 1, and the path's arcs each get credited once per sample.
  double out_total = 0.0;
  for (const GateId o : nl.outputs()) out_total += crit.output_criticality(o);
  EXPECT_NEAR(out_total, 1.0, 1e-9);
}

struct CoverageFixture {
  Netlist nl;
  Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField field;
  timing::DynamicTimingSimulator dyn;
  logicsim::BitSimulator sim;
  defect::DefectSizeModel size_model;
  std::vector<logicsim::PatternPair> patterns;
  double clk;

  CoverageFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 12;
          spec.n_outputs = 8;
          spec.n_gates = 100;
          spec.depth = 10;
          spec.seed = 802;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        model(nl, lib),
        field(model, 120, 0.03, 9),
        dyn(field, lev),
        sim(nl, lev),
        size_model(model.mean_cell_delay(), 0.5, 1.0, 0.5, 11),
        clk(0.0) {
    stats::Rng rng(12);
    for (int i = 0; i < 6; ++i) {
      patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
    }
    stats::SampleVector delta(field.sample_count(), 0.0);
    for (const auto& p : patterns) {
      const paths::TransitionGraph tg(sim, lev, p);
      delta.max_with(dyn.induced_delay(tg, dyn.simulate(tg)));
    }
    clk = delta.quantile(0.85);
  }
};

TEST(Coverage, BoundsAndBaselineConsistency) {
  CoverageFixture f;
  std::vector<ArcId> sites;
  for (ArcId a = 0; a < f.nl.arc_count(); a += 7) sites.push_back(a);
  const auto cov = eval::statistical_coverage(
      f.dyn, f.sim, f.lev, f.patterns, sites, f.size_model, f.clk);
  ASSERT_EQ(cov.site_coverage.size(), sites.size());
  for (const double c : cov.site_coverage) {
    EXPECT_GE(c, cov.defect_free_fail - 1e-12);  // monotone in defects
    EXPECT_LE(c, 1.0);
  }
  EXPECT_GE(cov.mean_coverage(), 0.0);
  EXPECT_LE(cov.mean_coverage(), 1.0);
  EXPECT_GE(cov.detection_rate(0.0), 1.0 - 1e-12);
  EXPECT_LE(cov.detection_rate(1.01), 0.0 + 1e-12);
}

TEST(Coverage, HugeClockMeansNoCoverage) {
  CoverageFixture f;
  const std::vector<ArcId> sites = {0, 3, 9};
  const auto cov = eval::statistical_coverage(
      f.dyn, f.sim, f.lev, f.patterns, sites, f.size_model, 1e9);
  EXPECT_DOUBLE_EQ(cov.defect_free_fail, 0.0);
  for (const double c : cov.site_coverage) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Coverage, UnionIsAtLeastSinglePattern) {
  CoverageFixture f;
  const std::vector<ArcId> sites = {5};
  const auto all = eval::statistical_coverage(
      f.dyn, f.sim, f.lev, f.patterns, sites, f.size_model, f.clk);
  const std::vector<logicsim::PatternPair> one = {f.patterns[0]};
  const auto single = eval::statistical_coverage(
      f.dyn, f.sim, f.lev, one, sites, f.size_model, f.clk);
  EXPECT_GE(all.site_coverage[0], single.site_coverage[0] - 1e-12);
}

TEST(PatternSelect, CoverageMonotoneAndBudgetRespected) {
  CoverageFixture f;
  std::vector<ArcId> suspects;
  for (ArcId a = 0; a < f.nl.arc_count() && suspects.size() < 20; a += 9) {
    suspects.push_back(a);
  }
  stats::Rng rng(13);
  std::vector<logicsim::PatternPair> candidates;
  for (int i = 0; i < 16; ++i) {
    candidates.push_back(
        atpg::random_pattern_pair(f.nl.inputs().size(), rng));
  }
  diagnosis::PatternSelectConfig config;
  config.budget = 5;
  const auto sel = diagnosis::select_diagnostic_patterns(
      f.dyn, f.sim, f.lev, candidates, suspects, f.size_model, f.clk, config);
  EXPECT_LE(sel.chosen.size(), 5u);
  EXPECT_EQ(sel.total_pairs, 20u * 19u / 2u);
  for (std::size_t i = 1; i < sel.pairs_covered.size(); ++i) {
    EXPECT_GE(sel.pairs_covered[i], sel.pairs_covered[i - 1]);
  }
  // The first pick must be the single best candidate: verify no other
  // single candidate distinguishes more pairs.
  if (!sel.chosen.empty()) {
    diagnosis::PatternSelectConfig one;
    one.budget = 1;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const std::vector<logicsim::PatternPair> solo = {candidates[c]};
      const auto r = diagnosis::select_diagnostic_patterns(
          f.dyn, f.sim, f.lev, solo, suspects, f.size_model, f.clk, one);
      const std::size_t pairs =
          r.pairs_covered.empty() ? 0 : r.pairs_covered[0];
      EXPECT_LE(pairs, sel.pairs_covered[0]);
    }
  }
}

TEST(PatternSelect, DegenerateInputs) {
  CoverageFixture f;
  const std::vector<ArcId> one_suspect = {3};
  stats::Rng rng(14);
  const std::vector<logicsim::PatternPair> candidates = {
      atpg::random_pattern_pair(f.nl.inputs().size(), rng)};
  const auto sel = diagnosis::select_diagnostic_patterns(
      f.dyn, f.sim, f.lev, candidates, one_suspect, f.size_model, f.clk);
  EXPECT_EQ(sel.total_pairs, 0u);
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_DOUBLE_EQ(sel.coverage(), 1.0);  // nothing to distinguish
}

}  // namespace
}  // namespace sddd
