// Tests for the introspection subsystem: the Wilson confidence math
// against known binomial tables, the DICT006 sample-budget rule, run
// manifests, and the end-to-end explanation report (phi-sum consistency
// with the Sim-II score, CI containment, thread-count byte-identity).
#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "analysis/dictionary_rules.h"
#include "eval/explain.h"
#include "introspect/confidence.h"
#include "introspect/manifest.h"
#include "netlist/synth.h"
#include "runtime/parallel_for.h"

namespace sddd {
namespace {

using introspect::Interval;

// --- confidence.h ---------------------------------------------------------

TEST(Confidence, WilsonMatchesKnownBinomialTables) {
  // Standard reference values for the 95% Wilson score interval.
  const Interval half = introspect::wilson_interval(0.5, 10);
  EXPECT_NEAR(half.lo, 0.2366, 1e-3);
  EXPECT_NEAR(half.hi, 0.7634, 1e-3);

  // p-hat = 1 stays non-degenerate (the Wald interval collapses to [1, 1]).
  const Interval ones = introspect::wilson_interval(1.0, 10);
  EXPECT_NEAR(ones.lo, 0.7225, 1e-3);
  EXPECT_DOUBLE_EQ(ones.hi, 1.0);

  // Symmetry: p-hat = 0 mirrors p-hat = 1.
  const Interval zeros = introspect::wilson_interval(0.0, 10);
  EXPECT_DOUBLE_EQ(zeros.lo, 0.0);
  EXPECT_NEAR(zeros.hi, 1.0 - ones.lo, 1e-12);
}

TEST(Confidence, ZeroSampleEdgeCases) {
  const Interval vacuous = introspect::wilson_interval(0.7, 0);
  EXPECT_DOUBLE_EQ(vacuous.lo, 0.0);
  EXPECT_DOUBLE_EQ(vacuous.hi, 1.0);
  EXPECT_DOUBLE_EQ(introspect::binomial_se(0.7, 0), 0.0);
  EXPECT_DOUBLE_EQ(introspect::wilson_worst_halfwidth(0), 0.5);
}

TEST(Confidence, IntervalAlwaysContainsTheEstimate) {
  for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    for (const std::size_t n : {1u, 10u, 120u, 10000u}) {
      const Interval ci = introspect::wilson_interval(p, n);
      EXPECT_TRUE(ci.contains(p)) << "p=" << p << " n=" << n;
      EXPECT_GE(ci.lo, 0.0);
      EXPECT_LE(ci.hi, 1.0);
      EXPECT_GT(ci.width(), 0.0);
    }
  }
}

TEST(Confidence, SamplesForHalfwidthIsTheMinimalInverse) {
  for (const double h : {0.2, 0.1, 0.05, 0.02}) {
    const std::size_t n = introspect::samples_for_halfwidth(h);
    ASSERT_GT(n, 1u);
    EXPECT_LE(introspect::wilson_worst_halfwidth(n), h) << "h=" << h;
    EXPECT_GT(introspect::wilson_worst_halfwidth(n - 1), h) << "h=" << h;
  }
  EXPECT_EQ(introspect::samples_for_halfwidth(0.5), 1u);
  EXPECT_EQ(introspect::samples_for_halfwidth(0.0), 0u);
}

TEST(Confidence, FactorIntervalFollowsTheBehaviorBit) {
  const Interval s{0.2, 0.6};
  // b = 1: f = s, interval passes through.
  const Interval pass = introspect::factor_interval(s, true);
  EXPECT_DOUBLE_EQ(pass.lo, 0.2);
  EXPECT_DOUBLE_EQ(pass.hi, 0.6);
  // b = 0: f = 1 - s, endpoints flip.
  const Interval flip = introspect::factor_interval(s, false);
  EXPECT_DOUBLE_EQ(flip.lo, 0.4);
  EXPECT_DOUBLE_EQ(flip.hi, 0.8);
}

// --- DICT006 (sample budget) ----------------------------------------------

analysis::DictionarySubject budget_subject(std::size_t mc_samples) {
  analysis::DictionarySubject subject;
  subject.n_outputs = 2;
  subject.n_patterns = 2;
  subject.m_crt = {{0.1, 0.2}, {0.3, 0.4}};
  analysis::DictionarySubject::Signature sig;
  sig.label = "arc 7";
  sig.s_crt = {{0.5, 0.0}, {0.0, 0.25}};
  subject.signatures.push_back(sig);
  subject.mc_samples = mc_samples;
  subject.target_ci_halfwidth = 0.1;
  return subject;
}

analysis::Report run_on_dictionary(const analysis::DictionarySubject& s) {
  analysis::AnalysisInput in;
  in.dictionary = &s;
  return analysis::Analyzer::with_default_rules().run(in);
}

TEST(DictionaryRules, LowSampleBudgetWarnsDict006) {
  // 24 samples: worst-case halfwidth ~0.186, well above the 0.1 target.
  const analysis::Report report = run_on_dictionary(budget_subject(24));
  EXPECT_TRUE(report.has_rule(analysis::kRuleSampleBudget));
  EXPECT_EQ(report.error_count(), 0u);  // a budget problem, not corruption
  EXPECT_NE(report.to_json().find("DICT006"), std::string::npos);
}

TEST(DictionaryRules, AdequateSampleBudgetIsSilent) {
  // 120 samples: worst-case halfwidth ~0.088, inside the 0.1 target.
  EXPECT_FALSE(run_on_dictionary(budget_subject(120))
                   .has_rule(analysis::kRuleSampleBudget));
  // mc_samples unset (0) means "not supplied": the rule must not fire.
  EXPECT_FALSE(run_on_dictionary(budget_subject(0))
                   .has_rule(analysis::kRuleSampleBudget));
}

// --- manifest.h ------------------------------------------------------------

TEST(Manifest, Hex64IsZeroPaddedLowercase) {
  EXPECT_EQ(introspect::to_hex64(0), "0000000000000000");
  EXPECT_EQ(introspect::to_hex64(0xDEADBEEFULL), "00000000deadbeef");
}

TEST(Manifest, JsonCarriesProvenanceFields) {
  introspect::RunManifest m;
  m.tool = "sddd_cli diagnose";
  m.circuit = "evalckt";
  m.run_id = introspect::to_hex64(0x1234ULL);
  m.seed = 8;
  m.mc_samples = 80;
  m.n_chips = 6;
  m.threads = 2;
  m.git_sha = "abc1234";
  m.faults = "exp.trial@1";
  m.quarantined_trials = 1;
  m.inputs.push_back({"ckt.bench", introspect::to_hex64(99), 1024});
  m.artifacts.push_back({"explain", "explain.json"});

  const std::string json = introspect::manifest_to_json(m);
  for (const char* needle :
       {"\"schema\": \"sddd-manifest-v1\"", "\"tool\": \"sddd_cli diagnose\"",
        "\"run_id\": \"0000000000001234\"", "\"git_sha\": \"abc1234\"",
        "\"faults\": \"exp.trial@1\"", "\"quarantined_trials\": 1",
        "\"ckt.bench\"", "\"explain.json\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// --- end-to-end explanation ------------------------------------------------

netlist::Netlist small_circuit(std::uint64_t seed) {
  netlist::SynthSpec spec;
  spec.name = "explainckt";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 120;
  spec.depth = 10;
  spec.seed = seed;
  return netlist::synthesize(spec);
}

eval::ExperimentConfig quick_config() {
  eval::ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 6;
  config.max_suspects = 120;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.site_search_tries = 64;
  config.seed = 8;
  return config;
}

TEST(ExplainTrial, PhiSumReproducesTheSimIIScore) {
  const auto nl = small_circuit(301);
  const auto report = eval::explain_trial(nl, quick_config(), {});

  ASSERT_FALSE(report.candidates.empty());
  EXPECT_GT(report.n_patterns, 0u);
  EXPECT_EQ(report.mc_samples, 80u);
  EXPECT_EQ(report.run_id.size(), 16u);

  const auto& top = report.candidates.front();
  EXPECT_EQ(top.rank, 0);

  // Sum of the per-pattern phi rows equals the candidate's phi_sum ...
  double pattern_sum = 0.0;
  for (const auto& p : top.patterns) pattern_sum += p.phi;
  EXPECT_NEAR(pattern_sum, top.phi_sum, 1e-12);

  // ... and phi_sum / |TP| is exactly the reported Sim-II score.
  const introspect::MethodScore* sim2 = nullptr;
  for (const auto& m : top.methods) {
    if (m.method == diagnosis::Method::kSimII) sim2 = &m;
  }
  ASSERT_NE(sim2, nullptr);
  EXPECT_NEAR(top.phi_sum / static_cast<double>(report.n_patterns),
              sim2->score, 1e-12);
}

TEST(ExplainTrial, EveryScoreSitsInsideItsInterval) {
  const auto nl = small_circuit(302);
  const auto config = quick_config();
  const auto report = eval::explain_trial(nl, config, {});

  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.separability.size(), config.methods.size());
  for (const auto& cand : report.candidates) {
    EXPECT_EQ(cand.methods.size(), config.methods.size());
    for (const auto& m : cand.methods) {
      EXPECT_LE(m.ci.lo, m.score + 1e-12);
      EXPECT_GE(m.ci.hi, m.score - 1e-12);
    }
    for (const auto& p : cand.patterns) {
      EXPECT_TRUE(p.phi_ci.contains(p.phi));
      for (const auto& c : p.cells) {
        EXPECT_TRUE(c.matched_ci.contains(c.matched));
      }
    }
  }
}

TEST(ExplainTrial, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto nl = small_circuit(303);
  const auto config = quick_config();
  const eval::ExplainRequest request;

  const std::size_t before = runtime::thread_count();
  runtime::set_thread_count(1);
  const std::string serial = introspect::to_json(
      eval::explain_trial(nl, config, request));
  runtime::set_thread_count(4);
  const std::string parallel = introspect::to_json(
      eval::explain_trial(nl, config, request));
  runtime::set_thread_count(before);

  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"schema\": \"sddd-explain-v1\""),
            std::string::npos);
}

TEST(ExplainTrial, RejectsOutOfRangeTrial) {
  const auto nl = small_circuit(304);
  eval::ExplainRequest request;
  request.trial = 99;  // config has 6 chips
  EXPECT_THROW(eval::explain_trial(nl, quick_config(), request),
               std::invalid_argument);
}

}  // namespace
}  // namespace sddd
