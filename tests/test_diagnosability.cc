// Tests for the static diagnosability analysis (DIAG001..DIAG006): the
// sensitization facts (ambiguity groups, dominance, dead arcs, redundant
// patterns, coverage), the DIAG rule pack and its DICT005 cross-link, the
// machine-readable report, and the suspect-collapse optimization that the
// diagnosability report licenses (bit-identical ranks, fewer phi evals).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analysis_graph.h"
#include "analysis/analyzer.h"
#include "analysis/diagnosability_rules.h"
#include "analysis/dictionary_rules.h"
#include "analysis/pass.h"
#include "eval/experiment.h"
#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "netlist/synth.h"
#include "runtime/parallel_for.h"
#include "timing/celllib.h"
#include "timing/delay_model.h"

#ifndef SDDD_TEST_DATA_DIR
#define SDDD_TEST_DATA_DIR "tests/data"
#endif

namespace sddd::analysis {
namespace {

/// Owns everything a DiagnosabilitySubject borrows.  Patterns are supplied
/// explicitly by each test, so the expected facts are derivable by hand.
struct SubjectFixture {
  explicit SubjectFixture(netlist::Netlist netlist, bool with_model = false)
      : nl(std::move(netlist)), lev(nl), logic_sim(nl, lev) {
    if (with_model) model = std::make_unique<timing::ArcDelayModel>(nl, lib);
    subject.netlist = &nl;
    subject.lev = &lev;
    subject.logic_sim = &logic_sim;
    subject.delay_model = model.get();
  }

  void add_pattern(std::vector<bool> v1, std::vector<bool> v2) {
    subject.patterns.push_back(
        logicsim::PatternPair{std::move(v1), std::move(v2)});
  }

  SensitizationFacts facts() const {
    return compute_sensitization_facts(subject);
  }

  Report run() const {
    AnalysisInput in;
    in.diagnosability = &subject;
    return Analyzer::with_default_rules().run(in);
  }

  netlist::Netlist nl;
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  std::unique_ptr<timing::ArcDelayModel> model;
  logicsim::BitSimulator logic_sim;
  DiagnosabilitySubject subject;
};

std::string data_path(const char* file) {
  return std::string(SDDD_TEST_DATA_DIR) + "/" + file;
}

// A single path a -> u -> v: both arcs lie on the same observable cone
// under every pattern, so they are one provable ambiguity group.
TEST(SensitizationFacts, ChainArcsFormOneAmbiguityGroup) {
  netlist::Netlist nl("chain");
  const auto a = nl.add_input("a");
  const auto u = nl.add_gate(netlist::CellType::kNot, "u", {a});
  const auto v = nl.add_gate(netlist::CellType::kNot, "v", {u});
  nl.add_output(v);
  nl.freeze();
  SubjectFixture fx(std::move(nl));
  fx.add_pattern({false}, {true});
  fx.add_pattern({true}, {false});

  const SensitizationFacts facts = fx.facts();
  const auto arc_au = fx.nl.arc_of(u, 0);
  const auto arc_uv = fx.nl.arc_of(v, 0);
  ASSERT_EQ(facts.groups.size(), 1u);
  EXPECT_EQ(facts.groups[0].arcs,
            (std::vector<netlist::ArcId>{arc_au, arc_uv}));
  EXPECT_EQ(facts.groups[0].coverage, 2u);
  EXPECT_EQ(facts.group_of[arc_au], 0);
  EXPECT_EQ(facts.group_of[arc_uv], 0);
  EXPECT_TRUE(facts.dead_arcs.empty());
  EXPECT_DOUBLE_EQ(facts.coverage_ratio, 1.0);

  const Report report = fx.run();
  EXPECT_TRUE(report.has_rule(kRuleAmbiguityGroup));
  EXPECT_FALSE(report.has_rule(kRuleDeadSuspect));
  EXPECT_EQ(report.error_count(), 0u);
}

// Reconvergence-free OR: each input arc is observed under only its own
// pattern while u->o is observed under both, so both input arcs are
// structurally dominated by u->o (DIAG002, info severity).
TEST(SensitizationFacts, FanInArcsAreDominatedByStemArc) {
  netlist::Netlist nl("dom");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto u = nl.add_gate(netlist::CellType::kOr, "u", {a, b});
  const auto o = nl.add_gate(netlist::CellType::kNot, "o", {u});
  nl.add_output(o);
  nl.freeze();
  SubjectFixture fx(std::move(nl));
  fx.add_pattern({false, false}, {true, false});  // toggles a only
  fx.add_pattern({false, false}, {false, true});  // toggles b only

  const SensitizationFacts facts = fx.facts();
  const auto arc_au = fx.nl.arc_of(u, 0);
  const auto arc_bu = fx.nl.arc_of(u, 1);
  const auto arc_uo = fx.nl.arc_of(o, 0);
  EXPECT_TRUE(facts.groups.empty());  // all three rows are distinct
  ASSERT_EQ(facts.dominance.size(), 2u);
  EXPECT_EQ(facts.dominance_found, 2u);
  for (const auto& pair : facts.dominance) {
    EXPECT_TRUE(pair.dominated == arc_au || pair.dominated == arc_bu);
    EXPECT_EQ(pair.dominator, arc_uo);
  }

  const Report report = fx.run();
  EXPECT_TRUE(report.has_rule(kRuleDominatedSuspect));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 0u);  // DIAG002 is info severity
}

// Dead-suspect fixture: the pattern set never toggles b or c, so the arcs
// they feed are statically dead and the coverage ratio is 2/4 - both
// DIAG003 and DIAG006 must fire.
TEST(SensitizationFacts, DeadSuspectFixture) {
  auto nl = netlist::parse_bench_file(data_path("diag_dead.bench"));
  SubjectFixture fx(std::move(nl));
  // a: rising then falling; b held 1, c held 0 throughout.
  fx.add_pattern({false, true, false}, {true, true, false});
  fx.add_pattern({true, true, false}, {false, true, false});

  const SensitizationFacts facts = fx.facts();
  const auto u = fx.nl.find("u");
  const auto o = fx.nl.find("o");
  const auto arc_bu = fx.nl.arc_of(u, 1);
  const auto arc_co = fx.nl.arc_of(o, 1);
  EXPECT_EQ(facts.dead_arcs,
            (std::vector<netlist::ArcId>{arc_bu, arc_co}));
  EXPECT_EQ(facts.pattern_coverage[arc_bu], 0u);
  EXPECT_EQ(facts.pattern_coverage[fx.nl.arc_of(u, 0)], 2u);
  EXPECT_DOUBLE_EQ(facts.coverage_ratio, 0.5);

  const Report report = fx.run();
  EXPECT_TRUE(report.has_rule(kRuleDeadSuspect));
  EXPECT_TRUE(report.has_rule(kRuleCoverageRatio));
  EXPECT_EQ(report.error_count(), 0u);

  const std::string json =
      diagnosability_report_json(fx.subject, facts);
  EXPECT_NE(json.find("\"coverage_ratio\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"dead_arcs\": [" + std::to_string(arc_bu)),
            std::string::npos);
}

// Redundant-pattern fixture: pattern 2 repeats pattern 0's launch/capture
// pair, so both produce identical observability columns (DIAG004).
TEST(SensitizationFacts, RedundantPatternFixture) {
  auto nl = netlist::parse_bench_file(data_path("diag_redundant.bench"));
  SubjectFixture fx(std::move(nl));
  fx.add_pattern({false, true}, {true, true});  // toggles a
  fx.add_pattern({true, false}, {true, true});  // toggles b
  fx.add_pattern({false, true}, {true, true});  // repeats pattern 0

  const SensitizationFacts facts = fx.facts();
  ASSERT_EQ(facts.redundant_patterns.size(), 1u);
  EXPECT_EQ(facts.redundant_patterns[0],
            (std::vector<std::size_t>{0u, 2u}));

  const Report report = fx.run();
  EXPECT_TRUE(report.has_rule(kRuleRedundantPattern));
  EXPECT_EQ(report.error_count(), 0u);
}

// Two disjoint inverter chains make two ambiguity groups whose analytic
// Clark-SSTA signatures live on different outputs: the separability sweep
// must compute a strictly positive L1 distance for both (DIAG005 facts).
TEST(SensitizationFacts, AnalyticSeparabilityOfDisjointChains) {
  netlist::Netlist nl("twochains");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto u = nl.add_gate(netlist::CellType::kNot, "u", {a});
  const auto o1 = nl.add_gate(netlist::CellType::kNot, "o1", {u});
  const auto v = nl.add_gate(netlist::CellType::kNot, "v", {b});
  const auto o2 = nl.add_gate(netlist::CellType::kNot, "o2", {v});
  nl.add_output(o1);
  nl.add_output(o2);
  nl.freeze();
  SubjectFixture fx(std::move(nl), /*with_model=*/true);
  fx.add_pattern({false, false}, {true, true});  // toggles both chains

  const SensitizationFacts facts = fx.facts();
  ASSERT_EQ(facts.groups.size(), 2u);
  ASSERT_EQ(facts.group_min_separation.size(), 2u);
  EXPECT_GT(facts.group_min_separation[0], 0.0);
  EXPECT_GT(facts.group_min_separation[1], 0.0);

  // Both groups entered the sweep, so no report entry may read null.
  const std::string json = diagnosability_report_json(fx.subject, facts);
  EXPECT_NE(json.find("\"min_separation\": "), std::string::npos);
  EXPECT_EQ(json.find("\"min_separation\": null"), std::string::npos);
}

// DICT005 <-> DIAG001 agreement on a shared fixture: a dictionary whose
// duplicate-signature class is labeled with the arcs of the structural
// ambiguity group must cross-link its finding to that group.
TEST(DiagnosabilityRules, Dict005CrossLinksToAmbiguityGroup) {
  netlist::Netlist nl("xlink");
  const auto a = nl.add_input("a");
  const auto u = nl.add_gate(netlist::CellType::kNot, "u", {a});
  const auto v = nl.add_gate(netlist::CellType::kNot, "v", {u});
  nl.add_output(v);
  nl.freeze();
  SubjectFixture fx(std::move(nl));
  fx.add_pattern({false}, {true});

  DictionarySubject dict;
  dict.n_outputs = 1;
  dict.n_patterns = 1;
  dict.m_crt = {{0.25}};
  DictionarySubject::Signature sig;
  sig.label = "arc " + std::to_string(fx.nl.arc_of(u, 0));
  sig.s_crt = {{0.5}};
  dict.signatures.push_back(sig);
  sig.label = "arc " + std::to_string(fx.nl.arc_of(v, 0));
  dict.signatures.push_back(sig);  // identical matrix: one DICT005 class

  AnalysisInput in;
  in.diagnosability = &fx.subject;
  in.dictionary = &dict;
  const Report report = Analyzer::with_default_rules().run(in);
  EXPECT_TRUE(report.has_rule(kRuleAmbiguityGroup));
  EXPECT_TRUE(report.has_rule(kRuleDuplicateSignature));
  const std::string text = report.to_text();
  EXPECT_NE(text.find("matches ambiguity group #0 (DIAG001)"),
            std::string::npos);
}

TEST(DiagnosabilityRules, ReportIsIdenticalAcrossThreadCounts) {
  auto nl = netlist::parse_bench_file(data_path("diag_dead.bench"));
  SubjectFixture fx(std::move(nl), /*with_model=*/true);
  fx.add_pattern({false, true, false}, {true, true, false});
  fx.add_pattern({true, true, false}, {false, true, false});

  const std::size_t before = runtime::thread_count();
  runtime::set_thread_count(1);
  const std::string serial = fx.run().to_json();
  runtime::set_thread_count(4);
  const std::string parallel = fx.run().to_json();
  runtime::set_thread_count(before);
  EXPECT_EQ(serial, parallel);
}

// Rejecting unfrozen netlists keeps every downstream consumer (lint,
// rules, report) on the frozen arc numbering.
TEST(SensitizationFacts, RequiresFrozenNetlist) {
  netlist::Netlist nl("unfrozen");
  const auto a = nl.add_input("a");
  const auto g = nl.add_gate(netlist::CellType::kNot, "g", {a});
  nl.add_output(g);
  DiagnosabilitySubject subject;
  subject.netlist = &nl;  // unfrozen: rejected before lev/sim are touched
  EXPECT_THROW(compute_sensitization_facts(subject), std::invalid_argument);
}

// Suspect collapse (the optimization the diagnosability report licenses):
// ranks, suspects and clk are bit-identical with collapse on or off, on
// the kernel and scalar paths, at 1 and 4 threads - only diag.phi_evals
// drops.
TEST(SuspectCollapse, BitIdenticalRanksWithFewerPhiEvals) {
  netlist::SynthSpec spec;
  spec.name = "collapseckt";
  spec.n_inputs = 14;
  spec.n_outputs = 8;
  spec.n_gates = 90;
  spec.depth = 8;
  spec.seed = 31;
  const auto nl = netlist::synthesize(spec);

  eval::ExperimentConfig config;
  config.mc_samples = 60;
  config.n_chips = 4;
  config.max_suspects = 100;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.site_search_tries = 64;
  config.seed = 11;

  const std::size_t before = runtime::thread_count();
  const auto baseline = eval::run_diagnosis_experiment(nl, config);
  ASSERT_GT(baseline.diagnosable_trials(), 0u);

  struct Variant {
    bool kernel;
    bool collapse;
    std::size_t threads;
  };
  const Variant variants[] = {{true, true, 1},
                              {true, true, 4},
                              {false, true, 1},
                              {false, true, 4}};
  for (const Variant& variant : variants) {
    auto vc = config;
    vc.use_score_kernel = variant.kernel;
    vc.collapse_unobservable = variant.collapse;
    runtime::set_thread_count(variant.threads);
    const auto r = eval::run_diagnosis_experiment(nl, vc);
    runtime::set_thread_count(before);
    ASSERT_EQ(r.trials.size(), baseline.trials.size());
    EXPECT_DOUBLE_EQ(r.clk, baseline.clk);
    for (std::size_t i = 0; i < r.trials.size(); ++i) {
      EXPECT_EQ(r.trials[i].chip.defect_arc,
                baseline.trials[i].chip.defect_arc);
      EXPECT_EQ(r.trials[i].n_suspects, baseline.trials[i].n_suspects);
      EXPECT_EQ(r.trials[i].rank_of_true, baseline.trials[i].rank_of_true);
      EXPECT_EQ(r.trials[i].logic_baseline_rank,
                baseline.trials[i].logic_baseline_rank);
    }
    // Collapse exists to cut scoring work: every pattern's unsensitized
    // suspects share one phi evaluation instead of one each.
    EXPECT_LT(r.phases.phi_evals, baseline.phases.phi_evals);
    EXPECT_GT(r.phases.phi_evals, 0u);
  }
}

}  // namespace
}  // namespace sddd::analysis
