// Tests for statistical slack analysis: chain exactness, the
// arrival/required/slack identities, and consistency with static timing
// and criticality.
#include <gtest/gtest.h>

#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/criticality.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/slack.h"
#include "timing/ssta.h"

namespace sddd::timing {
namespace {

using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

Netlist chain3() {
  Netlist nl("chain3");
  const auto a = nl.add_input("a");
  const auto g1 = nl.add_gate(CellType::kBuf, "g1", {a});
  const auto g2 = nl.add_gate(CellType::kNot, "g2", {g1});
  const auto g3 = nl.add_gate(CellType::kBuf, "g3", {g2});
  nl.add_output(g3);
  nl.freeze();
  return nl;
}

TEST(Slack, ChainSlackIsUniformAndExact) {
  // On a single path every arc has the same slack: clk - path delay.
  const auto nl = chain3();
  const Levelization lev(nl);
  CellLibraryConfig config;
  config.three_sigma_pct = 0.0;
  const StatisticalCellLibrary lib(config);
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 8, 0.0, 3);
  double path = 0.0;
  for (ArcId a = 0; a < nl.arc_count(); ++a) path += model.mean(a);
  const double clk = path + 25.0;
  const SlackAnalysis slack(field, lev, clk);
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    const auto s = slack.arc_slack(a);
    for (std::size_t k = 0; k < s.size(); ++k) {
      EXPECT_NEAR(s[k], 25.0, 1e-9) << "arc " << a;
    }
    EXPECT_DOUBLE_EQ(slack.violation_probability(a), 0.0);
    EXPECT_DOUBLE_EQ(slack.slack_below_probability(a, 26.0), 1.0);
    EXPECT_DOUBLE_EQ(slack.slack_below_probability(a, 24.0), 0.0);
  }
}

TEST(Slack, ArrivalsMatchStaticTiming) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 80;
  spec.depth = 9;
  spec.seed = 1001;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 50, 0.03, 5);
  const StaticTiming ssta(field, lev);
  const SlackAnalysis slack(field, lev, 1000.0);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    for (std::size_t k = 0; k < 50; ++k) {
      EXPECT_DOUBLE_EQ(slack.arrival(g)[k], ssta.arrival(g)[k]);
    }
  }
}

TEST(Slack, NegativeSlackIffClkBelowPathDelay) {
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 100;
  spec.depth = 10;
  spec.seed = 1002;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 120, 0.03, 7);
  const StaticTiming ssta(field, lev);
  // clk above the worst sample: nothing violates.
  const double clk_hi = ssta.circuit_delay().max_value() + 1.0;
  const SlackAnalysis relaxed(field, lev, clk_hi);
  for (ArcId a = 0; a < nl.arc_count(); a += 9) {
    EXPECT_DOUBLE_EQ(relaxed.violation_probability(a), 0.0) << "arc " << a;
  }
  // clk below the best sample: the critical path violates in every chip;
  // its arcs must show violation probability 1 somewhere.
  const double clk_lo = ssta.circuit_delay().min() - 1.0;
  const SlackAnalysis tight(field, lev, clk_lo);
  double worst = 0.0;
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    worst = std::max(worst, tight.violation_probability(a));
  }
  EXPECT_DOUBLE_EQ(worst, 1.0);
}

TEST(Slack, CriticalArcsHaveTheLeastSlack) {
  // The most critical arc (argmax path frequency) must be among the arcs
  // with the highest violation probability at a clk cutting the delay
  // distribution's middle.
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 110;
  spec.depth = 11;
  spec.seed = 1003;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 150, 0.03, 9);
  const StaticTiming ssta(field, lev);
  const double clk = ssta.circuit_delay().quantile(0.5);
  const SlackAnalysis slack(field, lev, clk);
  const CriticalityAnalysis crit(field, lev);
  const ArcId top = crit.ranked_arcs().front();
  // The top-criticality arc violates at clk=median in ~half the chips.
  EXPECT_GE(slack.violation_probability(top), 0.3);
  // Property: violation probability never exceeds the probability of the
  // whole circuit violating.
  const double circuit_viol = ssta.circuit_delay().critical_probability(clk);
  for (ArcId a = 0; a < nl.arc_count(); a += 7) {
    EXPECT_LE(slack.violation_probability(a), circuit_viol + 1e-9);
  }
}

TEST(Slack, MarginProbabilityMonotoneInMargin) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 70;
  spec.depth = 8;
  spec.seed = 1004;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const StatisticalCellLibrary lib;
  const ArcDelayModel model(nl, lib);
  const DelayField field(model, 80, 0.03, 11);
  const StaticTiming ssta(field, lev);
  const SlackAnalysis slack(field, lev, ssta.circuit_delay().quantile(0.9));
  stats::Rng rng(12);
  for (int t = 0; t < 10; ++t) {
    const ArcId a = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
    double prev = 0.0;
    for (const double margin : {0.0, 20.0, 60.0, 150.0, 400.0}) {
      const double p = slack.slack_below_probability(a, margin);
      EXPECT_GE(p, prev - 1e-12);
      prev = p;
    }
  }
}

}  // namespace
}  // namespace sddd::timing
