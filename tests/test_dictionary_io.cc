// Tests for dictionary/behavior serialization (paper future work #4).
#include <gtest/gtest.h>

#include <sstream>

#include "atpg/pdf_atpg.h"
#include "defect/defect_model.h"
#include "diagnosis/dictionary_io.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {
namespace {

TEST(BehaviorCsv, RoundTrip) {
  BehaviorMatrix b(3, 4);
  b.set(0, 1, true);
  b.set(2, 3, true);
  b.set(1, 0, true);
  std::ostringstream os;
  write_behavior_csv(b, os);
  std::istringstream is(os.str());
  const auto b2 = read_behavior_csv(is);
  ASSERT_EQ(b2.output_count(), 3u);
  ASSERT_EQ(b2.pattern_count(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(b2.at(i, j), b.at(i, j)) << i << "," << j;
    }
  }
}

TEST(BehaviorCsv, RejectsMalformed) {
  {
    std::istringstream is("");
    EXPECT_THROW((void)read_behavior_csv(is), std::runtime_error);
  }
  {
    std::istringstream is("nonsense\n");
    EXPECT_THROW((void)read_behavior_csv(is), std::runtime_error);
  }
  {
    std::istringstream is("2,2\n0,1\n");  // truncated
    EXPECT_THROW((void)read_behavior_csv(is), std::runtime_error);
  }
  {
    std::istringstream is("1,2\n0,7\n");  // bad cell
    EXPECT_THROW((void)read_behavior_csv(is), std::runtime_error);
  }
  {
    std::istringstream is("1,2\n0,1,1\n");  // too long
    EXPECT_THROW((void)read_behavior_csv(is), std::runtime_error);
  }
}

TEST(DictionaryCsv, EmitsConsistentRows) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 5;
  spec.n_gates = 60;
  spec.depth = 8;
  spec.seed = 701;
  const auto nl = netlist::synthesize(spec);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 60, 0.0, 5);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(nl, lev);
  stats::Rng rng(6);
  std::vector<logicsim::PatternPair> patterns;
  for (int i = 0; i < 3; ++i) {
    patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
  }
  const FaultDictionary dict(dyn, sim, lev, patterns, /*clk=*/500.0);
  const defect::DefectSizeModel size_model(model.mean_cell_delay(), 0.5, 1.0,
                                           0.5, 7);
  const std::vector<netlist::ArcId> suspects = {0, 5, 9};
  std::ostringstream os;
  write_dictionary_csv(dict, suspects, size_model, os);
  const std::string text = os.str();
  // Header + |suspects| * |patterns| * |outputs| rows.
  const auto rows = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(rows, 1 + 3 * 3 * 5);
  EXPECT_NE(text.find("suspect_arc,pattern,output,m,e,s"), std::string::npos);
  // Spot-check: every s field is non-negative (scan last column).
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    const auto pos = line.rfind(',');
    ASSERT_NE(pos, std::string::npos);
    EXPECT_GE(std::stod(line.substr(pos + 1)), 0.0);
  }
}

TEST(DenseDictionaryBytes, MatchesArithmetic) {
  EXPECT_EQ(dense_dictionary_bytes(100, 20, 30), 100ull * 20 * 30 * 8);
  EXPECT_EQ(dense_dictionary_bytes(0, 20, 30), 0ull);
  // The paper-scale worst case (600 suspects, 20 patterns, 150 outputs)
  // still fits easily in memory - the real cost is computing E, not
  // storing it.
  EXPECT_LT(dense_dictionary_bytes(600, 20, 150), 20ull << 20);
}

}  // namespace
}  // namespace sddd::diagnosis
