// Unit tests for the evaluation harness: experiment mechanics (metrics,
// determinism, monotone-in-K success), the Table I driver and the embedded
// paper reference numbers.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/paper_reference.h"
#include "eval/table1.h"
#include "netlist/synth.h"

namespace sddd::eval {
namespace {

using diagnosis::Method;

netlist::Netlist small_circuit(std::uint64_t seed) {
  netlist::SynthSpec spec;
  spec.name = "evalckt";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 120;
  spec.depth = 10;
  spec.seed = seed;
  return netlist::synthesize(spec);
}

ExperimentConfig quick_config() {
  ExperimentConfig config;
  config.mc_samples = 80;
  config.n_chips = 6;
  config.max_suspects = 120;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.site_search_tries = 64;
  config.seed = 8;
  return config;
}

TEST(Experiment, MetricsAreConsistent) {
  const auto nl = small_circuit(201);
  const auto r = run_diagnosis_experiment(nl, quick_config());
  EXPECT_EQ(r.trials.size(), 6u);
  EXPECT_GT(r.clk, 0.0);
  EXPECT_LE(r.diagnosable_trials(), r.trials.size());
  for (const auto& t : r.trials) {
    EXPECT_EQ(t.rank_of_true.size(), r.config.methods.size());
    if (t.failed_test) {
      EXPECT_GT(t.n_patterns, 0u);
      EXPECT_GT(t.n_failing_cells, 0u);
      EXPECT_GT(t.injection_attempts, 0u);
    }
  }
  if (r.diagnosable_trials() > 0) {
    EXPECT_GT(r.avg_suspects(), 0.0);
    EXPECT_GE(r.avg_injection_attempts(), 1.0);
  }
}

TEST(Experiment, SuccessRateMonotoneInK) {
  const auto nl = small_circuit(202);
  const auto r = run_diagnosis_experiment(nl, quick_config());
  for (const Method m : r.config.methods) {
    double prev = 0.0;
    for (const int k : {1, 2, 4, 8, 16, 64}) {
      const double rate = r.success_rate(m, k);
      EXPECT_GE(rate, prev - 1e-12);
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, 1.0);
      prev = rate;
    }
  }
}

TEST(Experiment, DeterministicForSeed) {
  const auto nl = small_circuit(203);
  const auto config = quick_config();
  const auto a = run_diagnosis_experiment(nl, config);
  const auto b = run_diagnosis_experiment(nl, config);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  EXPECT_DOUBLE_EQ(a.clk, b.clk);
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].chip.defect_arc, b.trials[i].chip.defect_arc);
    EXPECT_EQ(a.trials[i].rank_of_true, b.trials[i].rank_of_true);
  }
}

TEST(Experiment, UnknownMethodThrows) {
  const auto nl = small_circuit(204);
  auto config = quick_config();
  config.methods = {Method::kRev};
  config.n_chips = 1;
  const auto r = run_diagnosis_experiment(nl, config);
  EXPECT_THROW((void)r.success_rate(Method::kSimI, 1), std::invalid_argument);
}

TEST(Experiment, RejectsSequentialNetlist) {
  netlist::Netlist nl("seq");
  const auto a = nl.add_input("a");
  const auto d = nl.add_gate(netlist::CellType::kDff, "d", {a});
  nl.add_output(d);
  nl.freeze();
  EXPECT_THROW(run_diagnosis_experiment(nl, quick_config()),
               std::invalid_argument);
}

TEST(PaperReference, TwentyFourRowsMatchingCatalog) {
  EXPECT_EQ(paper_table1().size(), 24u);
  for (const char* name : {"s1196", "s1238", "s1423", "s1488", "s5378",
                           "s9234", "s13207", "s15850"}) {
    const auto rows = paper_table1_for(name);
    EXPECT_EQ(rows.size(), 3u) << name;
  }
  EXPECT_TRUE(paper_table1_for("c432").empty());
}

TEST(PaperReference, KnownValuesSpotCheck) {
  const auto rows = paper_table1_for("s5378");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2].k, 7);
  EXPECT_DOUBLE_EQ(rows[2].sim1_pct, 80.0);
  EXPECT_DOUBLE_EQ(rows[2].sim2_pct, 85.0);
  EXPECT_DOUBLE_EQ(rows[2].rev_pct, 90.0);
}

TEST(Table1, RunsOneCircuitAtTinyScale) {
  Table1Config config;
  config.circuits = {"s1196"};
  config.scale = 0.25;
  config.base = quick_config();
  config.base.n_chips = 4;
  const auto result = run_table1(config);
  ASSERT_EQ(result.experiments.size(), 1u);
  ASSERT_EQ(result.cells.size(), 3u);  // three K rows
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.circuit, "s1196");
    EXPECT_TRUE(cell.paper_sim1.has_value());
    EXPECT_GE(cell.sim1_pct, 0.0);
    EXPECT_LE(cell.rev_pct, 100.0);
  }
  // Rows ordered by increasing K as in the paper.
  EXPECT_LT(result.cells[0].k, result.cells[1].k);
  EXPECT_LT(result.cells[1].k, result.cells[2].k);
  // Rendering contains both measured and paper columns.
  const auto text = result.to_string();
  EXPECT_NE(text.find("s1196"), std::string::npos);
  EXPECT_NE(text.find("paper"), std::string::npos);
  const auto csv = result.to_csv();
  EXPECT_NE(csv.find("circuit,k"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
}

}  // namespace
}  // namespace sddd::eval
