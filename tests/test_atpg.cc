// Unit tests for the ATPG substrate: PODEM objective satisfaction, path
// sensitization (non-robust and robust), GA fill and the diagnostic
// pattern-set generator.
#include <gtest/gtest.h>

#include "atpg/diag_patterns.h"
#include "atpg/ga_fill.h"
#include "atpg/pdf_atpg.h"
#include "atpg/podem.h"
#include "logicsim/bitsim.h"
#include "logicsim/ternary.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "timing/celllib.h"
#include "timing/delay_model.h"

namespace sddd::atpg {
namespace {

using logicsim::BitSimulator;
using logicsim::Tern;
using logicsim::TernarySimulator;
using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;
using paths::Path;

Netlist c17() {
  return netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
}

TEST(Podem, SatisfiesSimpleObjectives) {
  const auto nl = c17();
  const Levelization lev(nl);
  const Podem podem(nl, lev);
  const TernarySimulator sim(nl, lev);
  for (const char* name : {"10", "11", "16", "19", "22", "23"}) {
    for (const bool v : {false, true}) {
      const std::vector<Objective> obj = {{nl.find(name), v}};
      const auto result = podem.solve(obj);
      ASSERT_TRUE(result.has_value()) << name << "=" << v;
      const auto values = sim.simulate(result->pi_values);
      EXPECT_EQ(values[nl.find(name)], v ? Tern::k1 : Tern::k0);
    }
  }
}

TEST(Podem, SatisfiesJointObjectives) {
  const auto nl = c17();
  const Levelization lev(nl);
  const Podem podem(nl, lev);
  const TernarySimulator sim(nl, lev);
  const std::vector<Objective> obj = {{nl.find("22"), false},
                                      {nl.find("23"), true}};
  const auto result = podem.solve(obj);
  ASSERT_TRUE(result.has_value());
  const auto values = sim.simulate(result->pi_values);
  EXPECT_EQ(values[nl.find("22")], Tern::k0);
  EXPECT_EQ(values[nl.find("23")], Tern::k1);
}

TEST(Podem, DetectsUnsatisfiable) {
  // y = AND(a, b); objectives y=1 and a=0 conflict.
  Netlist nl("conflict");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto y = nl.add_gate(CellType::kAnd, "y", {a, b});
  nl.add_output(y);
  nl.freeze();
  const Levelization lev(nl);
  const Podem podem(nl, lev);
  const std::vector<Objective> obj = {{y, true}, {a, false}};
  EXPECT_FALSE(podem.solve(obj).has_value());
}

TEST(Podem, RespectsPreAssignment) {
  const auto nl = c17();
  const Levelization lev(nl);
  const Podem podem(nl, lev);
  // Pin input "1" to 0 and require 10 = 0: needs 1=1 AND 3=1, conflict.
  std::vector<Tern> pre(nl.inputs().size(), Tern::kX);
  pre[0] = Tern::k0;  // input "1"
  const std::vector<Objective> obj = {{nl.find("10"), false}};
  EXPECT_FALSE(podem.solve(obj, 2000, pre).has_value());
  // With 1 pinned to 1 it is satisfiable.
  pre[0] = Tern::k1;
  EXPECT_TRUE(podem.solve(obj, 2000, pre).has_value());
}

TEST(Podem, ObjectiveOutOfRangeThrows) {
  const auto nl = c17();
  const Levelization lev(nl);
  const Podem podem(nl, lev);
  const std::vector<Objective> obj = {{static_cast<GateId>(9999), true}};
  EXPECT_THROW((void)podem.solve(obj), std::invalid_argument);
}

struct AtpgFixture {
  Netlist nl;
  Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  AtpgFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 16;
          spec.n_outputs = 10;
          spec.n_gates = 120;
          spec.depth = 10;
          spec.seed = 103;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        model(nl, lib) {}
};

TEST(PathDelayAtpg, GeneratedTestsLaunchTransitions) {
  AtpgFixture f;
  const PathDelayAtpg atpg(f.nl, f.lev);
  const BitSimulator sim(f.nl, f.lev);
  stats::Rng rng(15);
  std::size_t generated = 0;
  std::size_t activated = 0;
  for (ArcId site = 0; site < f.nl.arc_count(); site += 9) {
    const auto candidates = paths::k_heaviest_paths_through(
        f.nl, f.lev, f.model.means(), site, 6);
    for (const auto& path : candidates) {
      const auto test = atpg.generate(path, true, false, rng);
      if (!test) continue;
      ++generated;
      // The origin must toggle in every generated test.
      const paths::TransitionGraph tg(sim, f.lev, test->pattern);
      EXPECT_TRUE(tg.toggles(paths::path_source(f.nl, path)));
      if (atpg.activates(path, test->pattern)) ++activated;
    }
  }
  EXPECT_GT(generated, 10u);
  // A decent fraction of sensitizable targets must truly activate.
  EXPECT_GT(activated * 4, generated);
}

TEST(PathDelayAtpg, RobustTestsKeepSideInputsQuiet) {
  AtpgFixture f;
  const PathDelayAtpg atpg(f.nl, f.lev);
  const BitSimulator sim(f.nl, f.lev);
  stats::Rng rng(16);
  std::size_t checked = 0;
  for (ArcId site = 0; site < f.nl.arc_count() && checked < 12; site += 5) {
    const auto candidates = paths::k_heaviest_paths_through(
        f.nl, f.lev, f.model.means(), site, 4);
    for (const auto& path : candidates) {
      const auto test = atpg.generate(path, false, /*robust=*/true, rng);
      if (!test || !atpg.activates(path, test->pattern)) continue;
      ++checked;
      // Robust criterion: wherever the on-path input settles
      // non-controlling, side inputs hold steady non-controlling.
      const paths::TransitionGraph tg(sim, f.lev, test->pattern);
      for (const ArcId a : path.arcs) {
        const auto& arc = f.nl.arc(a);
        const auto& gate = f.nl.gate(arc.gate);
        if (!has_controlling_value(gate.type)) continue;
        const bool ctrl = controlling_value(gate.type);
        const GateId on_input = gate.fanins[arc.pin];
        if (tg.final_value(on_input) == ctrl) continue;
        for (std::uint32_t p = 0; p < gate.fanins.size(); ++p) {
          if (p == arc.pin) continue;
          const GateId side = gate.fanins[p];
          EXPECT_EQ(tg.final_value(side), !ctrl);
          EXPECT_EQ(tg.initial_value(side), !ctrl);
          EXPECT_FALSE(tg.toggles(side));
        }
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(PathDelayAtpg, SensitizeExposesTemplates) {
  AtpgFixture f;
  const PathDelayAtpg atpg(f.nl, f.lev);
  stats::Rng rng(17);
  for (ArcId site = 3; site < f.nl.arc_count(); site += 31) {
    const auto candidates = paths::k_heaviest_paths_through(
        f.nl, f.lev, f.model.means(), site, 2);
    for (const auto& path : candidates) {
      const auto templates = atpg.sensitize(path, true, false);
      if (!templates) continue;
      EXPECT_EQ(templates->v1.size(), f.nl.inputs().size());
      EXPECT_EQ(templates->v2.size(), f.nl.inputs().size());
      // The origin is pinned opposite in the two vectors.
      const GateId origin = paths::path_source(f.nl, path);
      for (std::size_t i = 0; i < f.nl.inputs().size(); ++i) {
        if (f.nl.inputs()[i] == origin) {
          EXPECT_EQ(templates->v1[i], Tern::k0);
          EXPECT_EQ(templates->v2[i], Tern::k1);
        }
      }
      return;  // one checked template is enough
    }
  }
}

TEST(GaFill, FitnessRewardsActivation) {
  AtpgFixture f;
  const PathDelayAtpg atpg(f.nl, f.lev);
  const GaFill ga(f.model, f.lev);
  stats::Rng rng(18);
  for (ArcId site = 0; site < f.nl.arc_count(); site += 11) {
    const auto candidates = paths::k_heaviest_paths_through(
        f.nl, f.lev, f.model.means(), site, 3);
    for (const auto& path : candidates) {
      const auto templates = atpg.sensitize(path, true, false);
      if (!templates) continue;
      GaFillConfig config;
      config.population = 12;
      config.generations = 8;
      const auto result = ga.fill(path, *templates, rng, config);
      EXPECT_GE(result.fitness, 0.0);
      if (result.path_activated) {
        // An activating fill must outscore a non-activating one.
        logicsim::PatternPair same = result.pattern;
        same.v1 = same.v2;  // no transitions at all
        EXPECT_GT(result.fitness, ga.fitness(path, same));
        return;
      }
    }
  }
}

TEST(GaFill, DeterministicForSeed) {
  AtpgFixture f;
  const PathDelayAtpg atpg(f.nl, f.lev);
  const GaFill ga(f.model, f.lev);
  for (ArcId site = 0; site < f.nl.arc_count(); site += 17) {
    const auto candidates = paths::k_heaviest_paths_through(
        f.nl, f.lev, f.model.means(), site, 2);
    for (const auto& path : candidates) {
      const auto templates = atpg.sensitize(path, false, false);
      if (!templates) continue;
      stats::Rng rng_a(77);
      stats::Rng rng_b(77);
      const auto ra = ga.fill(path, *templates, rng_a);
      const auto rb = ga.fill(path, *templates, rng_b);
      EXPECT_EQ(ra.pattern.v1, rb.pattern.v1);
      EXPECT_EQ(ra.pattern.v2, rb.pattern.v2);
      EXPECT_DOUBLE_EQ(ra.fitness, rb.fitness);
      return;
    }
  }
}

TEST(DiagPatterns, ProducesBoundedUniqueSet) {
  AtpgFixture f;
  stats::Rng rng(19);
  DiagnosticPatternConfig config;
  config.max_patterns = 10;
  for (ArcId site = 0; site < f.nl.arc_count(); site += 23) {
    const auto set = generate_diagnostic_patterns(f.model, f.lev, site,
                                                  config, rng);
    EXPECT_LE(set.size(), 10u);
    EXPECT_GE(set.size(), 1u);
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_EQ(set[i].v1.size(), f.nl.inputs().size());
      for (std::size_t j = i + 1; j < set.size(); ++j) {
        EXPECT_FALSE(set[i].v1 == set[j].v1 && set[i].v2 == set[j].v2);
      }
    }
  }
}

TEST(DiagPatterns, SiteSearchPatternsActivateSite) {
  AtpgFixture f;
  stats::Rng rng(20);
  const BitSimulator sim(f.nl, f.lev);
  std::size_t sites_with_hits = 0;
  for (ArcId site = 0; site < f.nl.arc_count(); site += 19) {
    const auto pats =
        site_activating_patterns(f.model, f.lev, site, 3, 120, rng);
    if (!pats.empty()) ++sites_with_hits;
    for (const auto& p : pats) {
      const paths::TransitionGraph tg(sim, f.lev, p);
      EXPECT_TRUE(tg.is_active(site));
    }
  }
  EXPECT_GT(sites_with_hits, 0u);
}

TEST(DiagPatterns, BestNominalDelayConsistent) {
  AtpgFixture f;
  stats::Rng rng(21);
  const DiagnosticPatternConfig config;
  for (ArcId site = 7; site < f.nl.arc_count(); site += 37) {
    const auto set =
        generate_diagnostic_patterns(f.model, f.lev, site, config, rng);
    const double d = site_best_nominal_delay(f.model, f.lev, set, site);
    EXPECT_GE(d, 0.0);
    // The empty set reports zero.
    EXPECT_DOUBLE_EQ(
        site_best_nominal_delay(f.model, f.lev, {}, site), 0.0);
  }
}

TEST(RandomPatternPair, CorrectWidth) {
  stats::Rng rng(22);
  const auto p = random_pattern_pair(9, rng);
  EXPECT_EQ(p.v1.size(), 9u);
  EXPECT_EQ(p.v2.size(), 9u);
}

}  // namespace
}  // namespace sddd::atpg
