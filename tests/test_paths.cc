// Unit tests for path machinery: path validity, transition graphs
// (toggles, active arcs, min/max rules), cones, path enumeration and
// heaviest-path selection.
#include <gtest/gtest.h>

#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/path.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"

namespace sddd::paths {
namespace {

using logicsim::BitSimulator;
using logicsim::Pattern;
using logicsim::PatternPair;
using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

/// a -> g1(NAND) -> g2(NOT) -> out, with side input b on g1.
struct Chain {
  Netlist nl{"chain"};
  GateId a, b, g1, g2;
  Chain() {
    a = nl.add_input("a");
    b = nl.add_input("b");
    g1 = nl.add_gate(CellType::kNand, "g1", {a, b});
    g2 = nl.add_gate(CellType::kNot, "g2", {g1});
    nl.add_output(g2);
    nl.freeze();
  }
};

TEST(Path, ValidityAndEndpoints) {
  const Chain c;
  Path p;
  p.arcs = {c.nl.arc_of(c.g1, 0), c.nl.arc_of(c.g2, 0)};
  EXPECT_TRUE(is_valid_path(c.nl, p));
  EXPECT_EQ(path_source(c.nl, p), c.a);
  EXPECT_EQ(path_sink(c.nl, p), c.g2);
  EXPECT_TRUE(path_contains(p, c.nl.arc_of(c.g1, 0)));
  EXPECT_FALSE(path_contains(p, c.nl.arc_of(c.g1, 1)));

  Path broken;
  broken.arcs = {c.nl.arc_of(c.g2, 0), c.nl.arc_of(c.g1, 0)};
  EXPECT_FALSE(is_valid_path(c.nl, broken));
  EXPECT_FALSE(is_valid_path(c.nl, Path{}));
}

TEST(Path, WeightSumsArcs) {
  const Chain c;
  Path p;
  p.arcs = {c.nl.arc_of(c.g1, 0), c.nl.arc_of(c.g2, 0)};
  const std::vector<double> w = {10.0, 20.0, 5.0};
  EXPECT_DOUBLE_EQ(path_weight(p, w), 15.0);
}

TEST(TransitionGraph, TogglesFollowLogic) {
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  // a: 0->1, b steady 1: NAND 1->0, NOT 0->1: everything toggles.
  const PatternPair pp{{false, true}, {true, true}};
  const TransitionGraph tg(sim, lev, pp);
  EXPECT_TRUE(tg.toggles(c.a));
  EXPECT_FALSE(tg.toggles(c.b));
  EXPECT_TRUE(tg.toggles(c.g1));
  EXPECT_TRUE(tg.toggles(c.g2));
  EXPECT_TRUE(tg.any_output_toggles());
  EXPECT_TRUE(tg.is_active(c.nl.arc_of(c.g1, 0)));
  EXPECT_FALSE(tg.is_active(c.nl.arc_of(c.g1, 1)));  // b does not toggle
  EXPECT_TRUE(tg.is_active(c.nl.arc_of(c.g2, 0)));
}

TEST(TransitionGraph, MinRuleWhenOutputControlled) {
  // Both NAND inputs fall 1->0: output rises because the FIRST input to
  // reach 0 controls it -> min rule with both arcs active.
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{true, true}, {false, false}};
  const TransitionGraph tg(sim, lev, pp);
  EXPECT_TRUE(tg.toggles(c.g1));
  EXPECT_EQ(tg.rule(c.g1), ArrivalRule::kMinOverActive);
  EXPECT_EQ(tg.active_fanins(c.g1).size(), 2u);
}

TEST(TransitionGraph, MaxRuleWhenOutputReleased) {
  // Both NAND inputs rise 0->1: output falls when the LAST input arrives
  // (leaves controlling 0) -> max rule.
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{false, false}, {true, true}};
  const TransitionGraph tg(sim, lev, pp);
  EXPECT_TRUE(tg.toggles(c.g1));
  EXPECT_EQ(tg.rule(c.g1), ArrivalRule::kMaxOverActive);
  EXPECT_EQ(tg.active_fanins(c.g1).size(), 2u);
}

TEST(TransitionGraph, ControlledFinalOnlyCountsControllingArcs) {
  // a falls 1->0 (to controlling for NAND), b steady 1: output rises due
  // to a alone.
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{true, true}, {false, true}};
  const TransitionGraph tg(sim, lev, pp);
  EXPECT_EQ(tg.rule(c.g1), ArrivalRule::kMinOverActive);
  ASSERT_EQ(tg.active_fanins(c.g1).size(), 1u);
  EXPECT_EQ(tg.active_fanins(c.g1)[0], c.nl.arc_of(c.g1, 0));
}

TEST(TransitionGraph, NoTogglesNoActivity) {
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{true, false}, {true, false}};  // v1 == v2
  const TransitionGraph tg(sim, lev, pp);
  EXPECT_FALSE(tg.any_output_toggles());
  for (ArcId a = 0; a < c.nl.arc_count(); ++a) {
    EXPECT_FALSE(tg.is_active(a));
  }
}

TEST(TransitionGraph, TogglingGateHasActiveFanin) {
  // Invariant: every toggling combinational gate has at least one active
  // fanin arc (documented in transition_graph.h).
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 120;
  spec.depth = 12;
  spec.seed = 51;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(8);
  for (int t = 0; t < 30; ++t) {
    PatternPair pp;
    pp.v1.resize(12);
    pp.v2.resize(12);
    for (std::size_t i = 0; i < 12; ++i) {
      pp.v1[i] = rng.bernoulli(0.5);
      pp.v2[i] = rng.bernoulli(0.5);
    }
    const TransitionGraph tg(sim, lev, pp);
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      if (tg.toggles(g) && is_combinational(nl.gate(g).type)) {
        EXPECT_FALSE(tg.active_fanins(g).empty()) << "gate " << g;
      }
    }
  }
}

TEST(TransitionGraph, ConeToOutputContainsOnlyActiveArcs) {
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{false, true}, {true, true}};
  const TransitionGraph tg(sim, lev, pp);
  const auto cone = tg.cone_to_output(c.g2);
  EXPECT_TRUE(cone[c.nl.arc_of(c.g2, 0)]);
  EXPECT_TRUE(cone[c.nl.arc_of(c.g1, 0)]);
  EXPECT_FALSE(cone[c.nl.arc_of(c.g1, 1)]);
  // Cone of a non-toggling gate is empty.
  const auto empty_cone = tg.cone_to_output(c.b);
  for (const bool f : empty_cone) EXPECT_FALSE(f);
}

TEST(TransitionGraph, ForwardConeIsTopoSorted) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 90;
  spec.depth = 10;
  spec.seed = 53;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(9);
  PatternPair pp;
  pp.v1.resize(10);
  pp.v2.resize(10);
  for (std::size_t i = 0; i < 10; ++i) {
    pp.v1[i] = rng.bernoulli(0.5);
    pp.v2[i] = !pp.v1[i];
  }
  const TransitionGraph tg(sim, lev, pp);
  for (const GateId pi : nl.inputs()) {
    const auto cone = tg.forward_cone(pi);
    for (std::size_t i = 1; i < cone.size(); ++i) {
      EXPECT_LE(lev.level(cone[i - 1]), lev.level(cone[i]));
    }
    if (tg.toggles(pi)) {
      ASSERT_FALSE(cone.empty());
      EXPECT_EQ(cone.front(), pi);
    }
  }
}

TEST(PathDistances, ChainDistances) {
  const Chain c;
  const Levelization lev(c.nl);
  const std::vector<double> w = {10.0, 20.0, 5.0};
  const PathDistances dist(c.nl, lev, w);
  EXPECT_DOUBLE_EQ(dist.upstream(c.a), 0.0);
  EXPECT_DOUBLE_EQ(dist.upstream(c.g1), 20.0);  // max(10 via a, 20 via b)
  EXPECT_DOUBLE_EQ(dist.upstream(c.g2), 25.0);
  EXPECT_DOUBLE_EQ(dist.downstream(c.g2), 0.0);
  EXPECT_DOUBLE_EQ(dist.downstream(c.g1), 5.0);
  EXPECT_DOUBLE_EQ(dist.downstream(c.a), 15.0);
  EXPECT_DOUBLE_EQ(dist.through_arc(c.nl.arc_of(c.g1, 0)), 15.0);
  EXPECT_DOUBLE_EQ(dist.through_arc(c.nl.arc_of(c.g1, 1)), 25.0);
  EXPECT_DOUBLE_EQ(dist.critical_weight(), 25.0);
}

TEST(PathDistances, SizeMismatchThrows) {
  const Chain c;
  const Levelization lev(c.nl);
  const std::vector<double> w = {1.0};
  EXPECT_THROW((PathDistances{c.nl, lev, w}), std::invalid_argument);
}

TEST(KHeaviestPaths, FindsTrueHeaviestFirst) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 80;
  spec.depth = 9;
  spec.seed = 61;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  std::vector<double> w(nl.arc_count());
  stats::Rng rng(10);
  for (auto& x : w) x = rng.uniform(1.0, 100.0);
  const PathDistances dist(nl, lev, w);
  for (ArcId site = 0; site < nl.arc_count(); site += 13) {
    const auto paths = k_heaviest_paths_through(nl, lev, w, site, 4);
    ASSERT_FALSE(paths.empty()) << "site " << site;
    // The first returned path must attain the DP bound through the arc.
    EXPECT_NEAR(path_weight(paths[0], w), dist.through_arc(site), 1e-9);
    for (const auto& p : paths) {
      EXPECT_TRUE(is_valid_path(nl, p));
      EXPECT_TRUE(path_contains(p, site));
    }
    // Heaviest-first ordering.
    for (std::size_t i = 1; i < paths.size(); ++i) {
      EXPECT_GE(path_weight(paths[i - 1], w), path_weight(paths[i], w) - 1e-9);
    }
  }
}

TEST(KHeaviestPaths, DistinctPaths) {
  netlist::SynthSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 5;
  spec.n_gates = 60;
  spec.depth = 8;
  spec.seed = 67;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const std::vector<double> w(nl.arc_count(), 1.0);
  const auto paths = k_heaviest_paths_through(nl, lev, w, 5, 8);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].arcs, paths[j].arcs);
    }
  }
}

TEST(EnumerateActivePaths, AllArcsActiveAndBounded) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 90;
  spec.depth = 10;
  spec.seed = 71;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(11);
  PatternPair pp;
  pp.v1.resize(10);
  pp.v2.resize(10);
  for (std::size_t i = 0; i < 10; ++i) {
    pp.v1[i] = rng.bernoulli(0.5);
    pp.v2[i] = !pp.v1[i];
  }
  const TransitionGraph tg(sim, lev, pp);
  for (const GateId o : nl.outputs()) {
    const auto ps = enumerate_active_paths(tg, o, 50);
    EXPECT_LE(ps.size(), 50u);
    for (const auto& p : ps) {
      for (const ArcId a : p.arcs) EXPECT_TRUE(tg.is_active(a));
      EXPECT_EQ(path_sink(tg.netlist(), p), o);
    }
  }
}

TEST(SuspectArcs, UnionOfConesMatchesManualCheck) {
  const Chain c;
  const Levelization lev(c.nl);
  const BitSimulator sim(c.nl, lev);
  const PatternPair pp{{false, true}, {true, true}};
  const TransitionGraph tg(sim, lev, pp);
  const std::vector<GateId> outs = {c.g2};
  const auto suspects = suspect_arcs_for_outputs(tg, outs);
  EXPECT_TRUE(suspects[c.nl.arc_of(c.g1, 0)]);
  EXPECT_TRUE(suspects[c.nl.arc_of(c.g2, 0)]);
  EXPECT_FALSE(suspects[c.nl.arc_of(c.g1, 1)]);
}

}  // namespace
}  // namespace sddd::paths
