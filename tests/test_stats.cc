// Unit tests for the statistics substrate: RNG determinism, parametric
// random variables (moments, sampling, quantiles), sample vectors
// (joint arithmetic, critical probability), histograms and correlation.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/rv.h"
#include "stats/sample_vector.h"

namespace sddd::stats {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 1);
  Rng b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(3);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(11);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(InverseNormalCdf, MatchesKnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447), 1.0, 1e-4);
}

TEST(InverseNormalCdf, RoundTripsWithCdf) {
  for (const double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-6);
  }
}

TEST(RandomVariable, PointMass) {
  const auto rv = RandomVariable::PointMass(3.5);
  EXPECT_DOUBLE_EQ(rv.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rv.stddev(), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rv.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(rv.quantile(0.01), 3.5);
  EXPECT_DOUBLE_EQ(rv.quantile(0.99), 3.5);
}

TEST(RandomVariable, NormalMoments) {
  const auto rv = RandomVariable::Normal(100.0, 5.0);
  Rng rng(2);
  const auto s = SampleVector::draw(rv, 20000, rng);
  EXPECT_NEAR(s.mean(), 100.0, 0.2);
  EXPECT_NEAR(s.stddev(), 5.0, 0.2);
}

TEST(RandomVariable, NormalThreeSigmaPct) {
  const auto rv = RandomVariable::NormalThreeSigmaPct(90.0, 0.15);
  EXPECT_DOUBLE_EQ(rv.mean(), 90.0);
  EXPECT_NEAR(rv.stddev(), 90.0 * 0.15 / 3.0, 1e-12);
}

TEST(RandomVariable, SamplesAreNonNegative) {
  // Mean close to zero relative to sigma: truncation must kick in.
  const auto rv = RandomVariable::Normal(1.0, 2.0);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) EXPECT_GE(rv.sample(rng), 0.0);
}

TEST(RandomVariable, LogNormalMomentMatch) {
  const auto rv = RandomVariable::LogNormalMeanSigma(50.0, 10.0);
  EXPECT_NEAR(rv.mean(), 50.0, 1e-9);
  EXPECT_NEAR(rv.stddev(), 10.0, 1e-9);
  Rng rng(4);
  const auto s = SampleVector::draw(rv, 40000, rng);
  EXPECT_NEAR(s.mean(), 50.0, 0.5);
  EXPECT_NEAR(s.stddev(), 10.0, 0.5);
}

TEST(RandomVariable, UniformMomentsAndQuantiles) {
  const auto rv = RandomVariable::Uniform(10.0, 20.0);
  EXPECT_DOUBLE_EQ(rv.mean(), 15.0);
  EXPECT_NEAR(rv.stddev(), 10.0 / std::sqrt(12.0), 1e-12);
  EXPECT_NEAR(rv.quantile(0.25), 12.5, 1e-9);
  EXPECT_NEAR(rv.quantile(0.75), 17.5, 1e-9);
}

TEST(RandomVariable, TriangularMoments) {
  const auto rv = RandomVariable::Triangular(0.0, 5.0, 10.0);
  EXPECT_NEAR(rv.mean(), 5.0, 1e-12);
  Rng rng(5);
  const auto s = SampleVector::draw(rv, 20000, rng);
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), rv.stddev(), 0.1);
}

TEST(RandomVariable, QuantileMonotone) {
  for (const auto rv :
       {RandomVariable::Normal(100.0, 8.0),
        RandomVariable::LogNormalMeanSigma(100.0, 8.0),
        RandomVariable::Uniform(1.0, 9.0),
        RandomVariable::Triangular(1.0, 3.0, 9.0)}) {
    double prev = -1.0;
    for (double u = 0.01; u < 1.0; u += 0.01) {
      const double q = rv.quantile(u);
      EXPECT_GE(q, prev) << rv.to_string() << " at u=" << u;
      prev = q;
    }
  }
}

TEST(RandomVariable, QuantileMatchesSampling) {
  const auto rv = RandomVariable::Normal(100.0, 10.0);
  EXPECT_NEAR(rv.quantile(0.5), 100.0, 1e-6);
  EXPECT_NEAR(rv.quantile(0.8413447), 110.0, 1e-3);
}

TEST(RandomVariable, ShiftedMovesMean) {
  const auto rv = RandomVariable::Normal(100.0, 10.0).shifted(30.0);
  EXPECT_DOUBLE_EQ(rv.mean(), 130.0);
  EXPECT_DOUBLE_EQ(rv.stddev(), 10.0);
}

TEST(RandomVariable, ScaledScalesBoth) {
  const auto rv = RandomVariable::Normal(100.0, 10.0).scaled(2.0);
  EXPECT_DOUBLE_EQ(rv.mean(), 200.0);
  EXPECT_DOUBLE_EQ(rv.stddev(), 20.0);
  const auto ln = RandomVariable::LogNormalMeanSigma(50.0, 5.0).scaled(3.0);
  EXPECT_NEAR(ln.mean(), 150.0, 1e-9);
  EXPECT_NEAR(ln.stddev(), 15.0, 1e-9);
}

TEST(RandomVariable, InvalidArgumentsThrow) {
  EXPECT_THROW(RandomVariable::PointMass(-1.0), std::invalid_argument);
  EXPECT_THROW(RandomVariable::Normal(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(RandomVariable::Uniform(5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(RandomVariable::Triangular(0.0, 5.0, 4.0),
               std::invalid_argument);
  EXPECT_THROW(RandomVariable::LogNormalMeanSigma(0.0, 1.0),
               std::invalid_argument);
}

TEST(SampleVector, JointSumAndMax) {
  SampleVector a(std::vector<double>{1.0, 5.0, 2.0});
  const SampleVector b(std::vector<double>{3.0, 1.0, 2.0});
  auto sum = a + b;
  EXPECT_EQ(sum.samples()[0], 4.0);
  EXPECT_EQ(sum.samples()[1], 6.0);
  EXPECT_EQ(sum.samples()[2], 4.0);
  a.max_with(b);
  EXPECT_EQ(a.samples()[0], 3.0);
  EXPECT_EQ(a.samples()[1], 5.0);
  EXPECT_EQ(a.samples()[2], 2.0);
}

TEST(SampleVector, SizeMismatchThrows) {
  SampleVector a(4, 0.0);
  const SampleVector b(5, 0.0);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.max_with(b), std::invalid_argument);
  EXPECT_THROW((void)a.correlation(b), std::invalid_argument);
}

TEST(SampleVector, CriticalProbability) {
  const SampleVector v(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(v.critical_probability(3.0), 0.4);  // strictly greater
  EXPECT_DOUBLE_EQ(v.critical_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.critical_probability(5.0), 0.0);
}

TEST(SampleVector, QuantileInterpolates) {
  const SampleVector v(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(v.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(v.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(v.quantile(1.0), 10.0);
  EXPECT_THROW((void)v.quantile(1.5), std::invalid_argument);
}

TEST(SampleVector, CorrelationOfIdenticalIsOne) {
  Rng rng(6);
  const auto v = SampleVector::draw(RandomVariable::Normal(5.0, 1.0), 500, rng);
  EXPECT_NEAR(v.correlation(v), 1.0, 1e-12);
}

TEST(SampleVector, MaxIsMonotoneInInputs) {
  // Property: adding a positive constant to one operand never decreases
  // the max - the foundation of S_crt >= 0.
  Rng rng(7);
  auto a = SampleVector::draw(RandomVariable::Normal(10.0, 2.0), 200, rng);
  const auto b = SampleVector::draw(RandomVariable::Normal(10.0, 2.0), 200, rng);
  auto m1 = max(a, b);
  a += 1.5;
  const auto m2 = max(a, b);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_GE(m2[i], m1[i]);
  }
}

TEST(Histogram, MassSumsToOne) {
  Rng rng(8);
  const auto v = SampleVector::draw(RandomVariable::Normal(50.0, 5.0), 1000, rng);
  const Histogram h(v, 20);
  double total = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) total += h.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, ClampsOutOfRange) {
  const SampleVector v(std::vector<double>{-5.0, 0.5, 99.0});
  const Histogram h(v, 10, 0.0, 1.0);
  EXPECT_EQ(h.count(0), 1u);  // -5 clamped into first bin
  EXPECT_EQ(h.count(9), 1u);  // 99 clamped into last bin
}

TEST(Histogram, DegenerateDataGetsPaddedRange) {
  const SampleVector v(std::vector<double>{7.0, 7.0, 7.0});
  const Histogram h(v, 5);
  EXPECT_LT(h.lo(), 7.0);
  EXPECT_GT(h.hi(), 7.0);
  EXPECT_FALSE(h.ascii(30).empty());
}

TEST(ProcessVariation, PairwiseCorrelationFormula) {
  const ProcessVariation pv(0.1, 0.1);
  EXPECT_NEAR(pv.pairwise_correlation(), 0.5, 1e-12);
  const ProcessVariation loc(0.0, 0.2);
  EXPECT_DOUBLE_EQ(loc.pairwise_correlation(), 0.0);
}

TEST(ProcessVariation, EmpiricalCorrelationMatchesTheory) {
  const ProcessVariation pv(0.08, 0.04);
  Rng rng(10);
  const auto g = pv.draw_global_factors(4000, rng);
  const auto m1 = pv.draw_multipliers(g, rng);
  const auto m2 = pv.draw_multipliers(g, rng);
  EXPECT_NEAR(m1.correlation(m2), pv.pairwise_correlation(), 0.05);
  EXPECT_NEAR(m1.mean(), 1.0, 0.01);
}

TEST(Cholesky, FactorsIdentity) {
  const std::vector<double> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  const auto L = cholesky_lower(eye, 3);
  EXPECT_EQ(L, eye);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  const std::vector<double> bad = {1, 2, 2, 1};  // correlation 2 > 1
  EXPECT_THROW(cholesky_lower(bad, 2), std::invalid_argument);
}

TEST(Cholesky, MvnSampleHasRequestedCorrelation) {
  const double rho = 0.7;
  const std::vector<double> cov = {1.0, rho, rho, 1.0};
  const auto L = cholesky_lower(cov, 2);
  Rng rng(11);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 8000; ++i) {
    const auto v = sample_mvn({0.0, 0.0}, L, 2, rng);
    xs.push_back(v[0]);
    ys.push_back(v[1]);
  }
  const SampleVector vx(std::move(xs));
  const SampleVector vy(std::move(ys));
  EXPECT_NEAR(vx.correlation(vy), rho, 0.03);
}

}  // namespace
}  // namespace sddd::stats
