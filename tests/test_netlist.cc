// Unit tests for the netlist core: cell metadata, construction rules,
// freeze validation, arc numbering, levelization, bench I/O round-trips,
// the full-scan transform, the synthetic generator and the ISCAS catalog.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bench_io.h"
#include "netlist/cell.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "netlist/scan.h"
#include "netlist/synth.h"

namespace sddd::netlist {
namespace {

TEST(Cell, TypeNamesRoundTrip) {
  for (const CellType t :
       {CellType::kBuf, CellType::kNot, CellType::kAnd, CellType::kNand,
        CellType::kOr, CellType::kNor, CellType::kXor, CellType::kXnor,
        CellType::kDff}) {
    const auto parsed = parse_cell_type(cell_type_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(Cell, ParserAcceptsAliasesAndCase) {
  EXPECT_EQ(parse_cell_type("BUFF"), CellType::kBuf);
  EXPECT_EQ(parse_cell_type("INV"), CellType::kNot);
  EXPECT_EQ(parse_cell_type("NaNd"), CellType::kNand);
  EXPECT_FALSE(parse_cell_type("mux").has_value());
}

TEST(Cell, ControllingValues) {
  EXPECT_TRUE(has_controlling_value(CellType::kAnd));
  EXPECT_FALSE(controlling_value(CellType::kAnd));   // AND controlled by 0
  EXPECT_FALSE(controlling_value(CellType::kNand));
  EXPECT_TRUE(controlling_value(CellType::kOr));     // OR controlled by 1
  EXPECT_TRUE(controlling_value(CellType::kNor));
  EXPECT_FALSE(has_controlling_value(CellType::kXor));
  EXPECT_FALSE(has_controlling_value(CellType::kNot));
}

TEST(Cell, InversionFlags) {
  EXPECT_TRUE(is_inverting(CellType::kNot));
  EXPECT_TRUE(is_inverting(CellType::kNand));
  EXPECT_TRUE(is_inverting(CellType::kNor));
  EXPECT_TRUE(is_inverting(CellType::kXnor));
  EXPECT_FALSE(is_inverting(CellType::kAnd));
  EXPECT_FALSE(is_inverting(CellType::kBuf));
}

Netlist tiny() {
  Netlist nl("tiny");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g1 = nl.add_gate(CellType::kNand, "g1", {a, b});
  const auto g2 = nl.add_gate(CellType::kNot, "g2", {g1});
  nl.add_output(g2);
  nl.freeze();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const auto nl = tiny();
  EXPECT_EQ(nl.gate_count(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.arc_count(), 3u);  // 2 into g1, 1 into g2
  EXPECT_EQ(nl.find("g1"), 2u);
  EXPECT_EQ(nl.find("nope"), kInvalidGate);
  EXPECT_EQ(nl.dff_count(), 0u);
}

TEST(Netlist, ArcNumberingIsDenseAndContiguous) {
  const auto nl = tiny();
  const GateId g1 = nl.find("g1");
  EXPECT_EQ(nl.arc_of(g1, 0), nl.arc_base(g1));
  EXPECT_EQ(nl.arc_of(g1, 1), nl.arc_base(g1) + 1);
  const auto& arc = nl.arc(nl.arc_of(g1, 1));
  EXPECT_EQ(arc.gate, g1);
  EXPECT_EQ(arc.pin, 1u);
}

TEST(Netlist, FanoutsComputedOnFreeze) {
  const auto nl = tiny();
  EXPECT_EQ(nl.gate(nl.find("g1")).fanouts.size(), 1u);
  EXPECT_EQ(nl.gate(nl.find("a")).fanouts.size(), 1u);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), std::invalid_argument);
}

TEST(Netlist, ArityViolationsThrow) {
  Netlist nl;
  const auto a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(CellType::kAnd, "g", {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(CellType::kNot, "g", {a, a}),
               std::invalid_argument);
}

TEST(Netlist, FreezeRejectsUndefinedDeclarations) {
  Netlist nl;
  nl.declare("pending");
  EXPECT_THROW(nl.freeze(), std::logic_error);
}

TEST(Netlist, DeclareDefineSupportsForwardReferences) {
  Netlist nl;
  const auto out = nl.declare("out");
  const auto a = nl.add_input("a");
  nl.define(out, CellType::kNot, {a});
  nl.add_output(out);
  nl.freeze();
  EXPECT_EQ(nl.gate(out).type, CellType::kNot);
}

TEST(Netlist, MutationAfterFreezeThrows) {
  auto nl = tiny();
  EXPECT_THROW(nl.add_input("z"), std::logic_error);
}

TEST(Levelize, LevelsAndDepth) {
  const auto nl = tiny();
  const Levelization lev(nl);
  EXPECT_EQ(lev.level(nl.find("a")), 0u);
  EXPECT_EQ(lev.level(nl.find("g1")), 1u);
  EXPECT_EQ(lev.level(nl.find("g2")), 2u);
  EXPECT_EQ(lev.depth(), 2u);
  EXPECT_EQ(lev.topo_order().size(), nl.gate_count());
}

TEST(Levelize, TopoOrderRespectsDependencies) {
  SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 150;
  spec.depth = 14;
  spec.seed = 5;
  const auto nl = synthesize(spec);
  const Levelization lev(nl);
  std::vector<int> pos(nl.gate_count(), -1);
  for (std::size_t i = 0; i < lev.topo_order().size(); ++i) {
    pos[lev.topo_order()[i]] = static_cast<int>(i);
  }
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    for (const GateId f : nl.gate(g).fanins) {
      EXPECT_LT(pos[f], pos[g]);
    }
  }
}

TEST(Levelize, CombinationalCycleThrows) {
  Netlist nl;
  const auto a = nl.add_input("a");
  const auto x = nl.declare("x");
  const auto y = nl.add_gate(CellType::kAnd, "y", {a, x});
  nl.define(x, CellType::kNot, {y});
  nl.add_output(y);
  nl.freeze();
  EXPECT_THROW(Levelization{nl}, std::invalid_argument);
}

TEST(Levelize, DffBreaksCycle) {
  const auto nl = parse_bench_string(s27_bench_text(), "s27");
  EXPECT_NO_THROW(Levelization{nl});
}

TEST(BenchIo, ParsesC17) {
  const auto nl = parse_bench_string(c17_bench_text(), "c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 11u);  // 5 PI + 6 NAND
  EXPECT_EQ(nl.dff_count(), 0u);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (nl.gate(g).type != CellType::kInput) {
      EXPECT_EQ(nl.gate(g).type, CellType::kNand);
      EXPECT_EQ(nl.gate(g).fanins.size(), 2u);
    }
  }
}

TEST(BenchIo, ParsesS27WithDffsAndForwardRefs) {
  const auto nl = parse_bench_string(s27_bench_text(), "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dff_count(), 3u);
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const auto nl = parse_bench_string(s27_bench_text(), "s27");
  const auto text = to_bench_string(nl);
  const auto nl2 = parse_bench_string(text, "s27rt");
  EXPECT_EQ(nl2.gate_count(), nl.gate_count());
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  EXPECT_EQ(nl2.dff_count(), nl.dff_count());
  EXPECT_EQ(nl2.arc_count(), nl.arc_count());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const GateId h = nl2.find(nl.gate(g).name);
    ASSERT_NE(h, kInvalidGate);
    EXPECT_EQ(nl2.gate(h).type, nl.gate(g).type);
    EXPECT_EQ(nl2.gate(h).fanins.size(), nl.gate(g).fanins.size());
  }
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\ng = FROB(a)\n", "bad");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, RejectsMalformedLines) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("OUTPUT(zzz)\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("= AND(a, b)\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nx = AND(a, )\n"),
               std::runtime_error);
}

TEST(BenchIo, IgnoresCommentsAndBlanks) {
  const auto nl = parse_bench_string(
      "# header\n\nINPUT(a)  # trailing\nOUTPUT(b)\nb = NOT(a)\n");
  EXPECT_EQ(nl.gate_count(), 2u);
}

TEST(Scan, S27FullScanShape) {
  const auto seq = parse_bench_string(s27_bench_text(), "s27");
  const auto core = full_scan_transform(seq);
  EXPECT_EQ(core.dff_count(), 0u);
  EXPECT_EQ(core.inputs().size(), 4u + 3u);   // PI + pseudo-PI
  EXPECT_EQ(core.outputs().size(), 1u + 3u);  // PO + pseudo-PO
  EXPECT_EQ(core.gate_count(), seq.gate_count());
  // Gate ids preserved 1:1.
  for (GateId g = 0; g < seq.gate_count(); ++g) {
    EXPECT_EQ(core.gate(g).name, seq.gate(g).name);
  }
}

TEST(Scan, CombinationalCircuitUnchanged) {
  const auto c17 = parse_bench_string(c17_bench_text(), "c17");
  const auto core = full_scan_transform(c17);
  EXPECT_EQ(core.gate_count(), c17.gate_count());
  EXPECT_EQ(core.inputs().size(), c17.inputs().size());
  EXPECT_EQ(core.outputs().size(), c17.outputs().size());
}

TEST(Synth, MatchesSpecCounts) {
  SynthSpec spec;
  spec.name = "syn";
  spec.n_inputs = 10;
  spec.n_outputs = 7;
  spec.n_gates = 90;
  spec.depth = 11;
  spec.seed = 17;
  const auto nl = synthesize(spec);
  EXPECT_EQ(nl.inputs().size(), 10u);
  EXPECT_EQ(nl.outputs().size(), 7u);
  EXPECT_EQ(nl.gate_count(), 10u + 90u);
  const Levelization lev(nl);
  EXPECT_GE(lev.depth(), 8u);
  EXPECT_LE(lev.depth(), 11u);
}

TEST(Synth, DeterministicForSeed) {
  SynthSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 5;
  spec.n_gates = 60;
  spec.depth = 8;
  spec.seed = 23;
  const auto a = synthesize(spec);
  const auto b = synthesize(spec);
  EXPECT_EQ(to_bench_string(a), to_bench_string(b));
  spec.seed = 24;
  const auto c = synthesize(spec);
  EXPECT_NE(to_bench_string(a), to_bench_string(c));
}

TEST(Synth, NoDanglingLogic) {
  SynthSpec spec;
  spec.n_inputs = 14;
  spec.n_outputs = 9;
  spec.n_gates = 200;
  spec.depth = 16;
  spec.seed = 31;
  const auto nl = synthesize(spec);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const bool used = !nl.gate(g).fanouts.empty() || nl.output_index(g) >= 0;
    EXPECT_TRUE(used) << "dangling gate " << nl.gate(g).name;
  }
}

TEST(Synth, NoTriviallyRedundantFanins) {
  SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 150;
  spec.depth = 12;
  spec.seed = 37;
  const auto nl = synthesize(spec);
  // No gate may see both x and NOT(x) (or x twice) among its fanins -
  // the generator promises non-degenerate logic.
  std::size_t violations = 0;
  const auto source = [&](GateId x) {
    const auto& g = nl.gate(x);
    if ((g.type == CellType::kNot || g.type == CellType::kBuf) &&
        !g.fanins.empty()) {
      return g.fanins[0];
    }
    return x;
  };
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const auto& fi = nl.gate(g).fanins;
    for (std::size_t i = 0; i < fi.size(); ++i) {
      for (std::size_t j = i + 1; j < fi.size(); ++j) {
        if (fi[i] == fi[j] || source(fi[i]) == source(fi[j])) ++violations;
      }
    }
  }
  EXPECT_EQ(violations, 0u);
}

TEST(Synth, RejectsBadSpecs) {
  SynthSpec spec;
  spec.n_gates = 5;
  spec.n_outputs = 9;
  EXPECT_THROW(synthesize(spec), std::invalid_argument);
  spec = SynthSpec{};
  spec.depth = 0;
  EXPECT_THROW(synthesize(spec), std::invalid_argument);
  spec = SynthSpec{};
  spec.n_gates = 4;
  spec.depth = 9;
  spec.n_outputs = 2;
  EXPECT_THROW(synthesize(spec), std::invalid_argument);
}

TEST(Catalog, HasAllEightTable1Circuits) {
  EXPECT_EQ(table1_circuits().size(), 8u);
  for (const char* name : {"s1196", "s1238", "s1423", "s1488", "s5378",
                           "s9234", "s13207", "s15850"}) {
    EXPECT_NE(find_profile(name), nullptr) << name;
  }
  EXPECT_EQ(find_profile("s9999"), nullptr);
}

TEST(Catalog, StandinMatchesProfile) {
  const auto* p = find_profile("s1238");
  ASSERT_NE(p, nullptr);
  const auto nl = make_standin(*p, 1.0, 7);
  EXPECT_EQ(nl.inputs().size(), p->n_pi + p->n_ff);
  EXPECT_EQ(nl.outputs().size(), p->n_po + p->n_ff);
  EXPECT_EQ(nl.gate_count() - nl.inputs().size(), p->n_gates);
  EXPECT_EQ(nl.dff_count(), 0u);
}

TEST(Catalog, ScaleShrinksGateCount) {
  const auto* p = find_profile("s5378");
  const auto nl = make_standin(*p, 0.25, 7);
  const auto gates = nl.gate_count() - nl.inputs().size();
  EXPECT_NEAR(static_cast<double>(gates), 0.25 * p->n_gates,
              0.01 * p->n_gates + 1.0);
}

}  // namespace
}  // namespace sddd::netlist
