// Property-based tests: invariants checked across a parameterized sweep of
// synthetic circuits (TEST_P over generator seeds) and random stimuli.
// Each property encodes a theorem the design relies on, not an example.
#include <gtest/gtest.h>

#include "atpg/podem.h"
#include "logicsim/bitsim.h"
#include "logicsim/ternary.h"
#include "netlist/bench_io.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"
#include "timing/ssta.h"

namespace sddd {
namespace {

using logicsim::BitSimulator;
using logicsim::PatternPair;
using logicsim::Tern;
using netlist::ArcId;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;
using paths::TransitionGraph;

struct CircuitParam {
  std::uint64_t seed;
  std::uint32_t n_inputs;
  std::uint32_t n_outputs;
  std::uint32_t n_gates;
  std::uint32_t depth;
};

class CircuitProperty : public ::testing::TestWithParam<CircuitParam> {
 protected:
  Netlist make_circuit() const {
    const auto& p = GetParam();
    netlist::SynthSpec spec;
    spec.name = "prop" + std::to_string(p.seed);
    spec.n_inputs = p.n_inputs;
    spec.n_outputs = p.n_outputs;
    spec.n_gates = p.n_gates;
    spec.depth = p.depth;
    spec.seed = p.seed;
    return netlist::synthesize(spec);
  }

  PatternPair random_pair(const Netlist& nl, stats::Rng& rng) const {
    PatternPair pp;
    pp.v1.resize(nl.inputs().size());
    pp.v2.resize(nl.inputs().size());
    for (std::size_t i = 0; i < pp.v1.size(); ++i) {
      pp.v1[i] = rng.bernoulli(0.5);
      pp.v2[i] = rng.bernoulli(0.5);
    }
    return pp;
  }
};

TEST_P(CircuitProperty, FanoutListsMirrorFanins) {
  const auto nl = make_circuit();
  // Count pin connections in both directions; they must agree exactly.
  std::vector<std::size_t> as_fanin(nl.gate_count(), 0);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    for (const GateId f : nl.gate(g).fanins) ++as_fanin[f];
  }
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(nl.gate(g).fanouts.size(), as_fanin[g]) << "gate " << g;
  }
}

TEST_P(CircuitProperty, ArcNumberingIsABijection) {
  const auto nl = make_circuit();
  std::vector<bool> seen(nl.arc_count(), false);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    for (std::uint32_t pin = 0; pin < nl.gate(g).fanins.size(); ++pin) {
      const ArcId a = nl.arc_of(g, pin);
      ASSERT_LT(a, nl.arc_count());
      EXPECT_FALSE(seen[a]);
      seen[a] = true;
      EXPECT_EQ(nl.arc(a).gate, g);
      EXPECT_EQ(nl.arc(a).pin, pin);
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST_P(CircuitProperty, BenchRoundTripIsStructurePreserving) {
  const auto nl = make_circuit();
  const auto nl2 =
      netlist::parse_bench_string(netlist::to_bench_string(nl), nl.name());
  ASSERT_EQ(nl2.gate_count(), nl.gate_count());
  ASSERT_EQ(nl2.arc_count(), nl.arc_count());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const GateId h = nl2.find(nl.gate(g).name);
    ASSERT_NE(h, netlist::kInvalidGate);
    EXPECT_EQ(nl2.gate(h).type, nl.gate(g).type);
    ASSERT_EQ(nl2.gate(h).fanins.size(), nl.gate(g).fanins.size());
    for (std::size_t i = 0; i < nl.gate(g).fanins.size(); ++i) {
      EXPECT_EQ(nl2.gate(nl2.gate(h).fanins[i]).name,
                nl.gate(nl.gate(g).fanins[i]).name);
    }
  }
}

TEST_P(CircuitProperty, ActiveArcsConnectTogglingNets) {
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0xAB);
  for (int t = 0; t < 12; ++t) {
    const TransitionGraph tg(sim, lev, random_pair(nl, rng));
    for (ArcId a = 0; a < nl.arc_count(); ++a) {
      if (!tg.is_active(a)) continue;
      const auto& arc = nl.arc(a);
      EXPECT_TRUE(tg.toggles(arc.gate));
      EXPECT_TRUE(tg.toggles(nl.gate(arc.gate).fanins[arc.pin]));
    }
  }
}

TEST_P(CircuitProperty, MinRuleImpliesControlledFinalValue) {
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0xCD);
  for (int t = 0; t < 12; ++t) {
    const TransitionGraph tg(sim, lev, random_pair(nl, rng));
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      if (!tg.toggles(g) || !is_combinational(nl.gate(g).type)) continue;
      if (tg.rule(g) == paths::ArrivalRule::kMinOverActive) {
        const auto& gate = nl.gate(g);
        ASSERT_TRUE(has_controlling_value(gate.type));
        const bool ctrl = controlling_value(gate.type);
        bool some_ctrl = false;
        for (const GateId f : gate.fanins) {
          some_ctrl |= (tg.final_value(f) == ctrl);
        }
        EXPECT_TRUE(some_ctrl) << "gate " << g;
      }
    }
  }
}

TEST_P(CircuitProperty, InducedDelayNeverExceedsStaticDelay) {
  // Induced(Path_v) is a subcircuit of C, and min <= max: per sample, the
  // dynamic output arrival cannot exceed the static (all-paths) arrival.
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 60, 0.03, GetParam().seed);
  const timing::StaticTiming ssta(field, lev);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0xEF);
  for (int t = 0; t < 6; ++t) {
    const TransitionGraph tg(sim, lev, random_pair(nl, rng));
    const auto arrivals = dyn.simulate(tg);
    for (const GateId o : nl.outputs()) {
      if (!tg.toggles(o)) continue;
      for (std::size_t k = 0; k < 60; ++k) {
        EXPECT_LE(arrivals.rows[o][k], ssta.arrival(o)[k] + 1e-9);
      }
    }
  }
}

TEST_P(CircuitProperty, CriticalProbabilityMonotoneInClk) {
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 80, 0.03, GetParam().seed + 1);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0x11);
  const TransitionGraph tg(sim, lev, random_pair(nl, rng));
  const auto arrivals = dyn.simulate(tg);
  const auto delta = dyn.induced_delay(tg, arrivals);
  const double lo_clk = delta.quantile(0.3);
  const double hi_clk = delta.quantile(0.9);
  const auto err_lo = dyn.error_vector(tg, arrivals, lo_clk);
  const auto err_hi = dyn.error_vector(tg, arrivals, hi_clk);
  for (std::size_t i = 0; i < err_lo.size(); ++i) {
    EXPECT_GE(err_lo[i], err_hi[i]);
  }
}

TEST_P(CircuitProperty, HeaviestPathAttainsDistanceBound) {
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const paths::PathDistances dist(nl, lev, model.means());
  stats::Rng rng(GetParam().seed ^ 0x22);
  for (int t = 0; t < 10; ++t) {
    const ArcId site = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
    const auto ps =
        paths::k_heaviest_paths_through(nl, lev, model.means(), site, 3);
    ASSERT_FALSE(ps.empty());
    EXPECT_NEAR(paths::path_weight(ps[0], model.means()),
                dist.through_arc(site), 1e-9);
    for (const auto& p : ps) {
      EXPECT_TRUE(paths::is_valid_path(nl, p));
      EXPECT_TRUE(paths::path_contains(p, site));
      // No path can outweigh the circuit critical weight.
      EXPECT_LE(paths::path_weight(p, model.means()),
                dist.critical_weight() + 1e-9);
    }
  }
}

TEST_P(CircuitProperty, PodemSolutionsSatisfyObjectives) {
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const atpg::Podem podem(nl, lev);
  const logicsim::TernarySimulator tsim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0x33);
  std::size_t solved = 0;
  for (int t = 0; t < 20; ++t) {
    // Random 1-3 joint objectives on internal gates.
    std::vector<atpg::Objective> obj;
    const std::size_t count = 1 + rng.below(3);
    for (std::size_t i = 0; i < count; ++i) {
      GateId g = rng.below(static_cast<std::uint32_t>(nl.gate_count()));
      if (!is_combinational(nl.gate(g).type)) g = nl.outputs()[0];
      obj.push_back({g, rng.bernoulli(0.5)});
    }
    const auto result = podem.solve(obj, 500);
    if (!result) continue;
    ++solved;
    const auto values = tsim.simulate(result->pi_values);
    for (const auto& o : obj) {
      EXPECT_EQ(values[o.gate], o.value ? Tern::k1 : Tern::k0)
          << "objective on gate " << o.gate;
    }
  }
  EXPECT_GT(solved, 0u);
}

TEST_P(CircuitProperty, DefectMonotonicityAcrossRandomPatterns) {
  // E >= M cellwise for arbitrary (pattern, suspect, size) - the
  // Definition E.1 invariant the whole dictionary rests on.
  const auto nl = make_circuit();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 50, 0.05, GetParam().seed + 2);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const BitSimulator sim(nl, lev);
  stats::Rng rng(GetParam().seed ^ 0x44);
  for (int t = 0; t < 6; ++t) {
    const TransitionGraph tg(sim, lev, random_pair(nl, rng));
    const auto arrivals = dyn.simulate(tg);
    const double clk = dyn.induced_delay(tg, arrivals).quantile(0.75);
    const auto m = dyn.error_vector(tg, arrivals, clk);
    for (int s = 0; s < 5; ++s) {
      timing::InjectedDefect defect;
      defect.arc = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
      defect.extra.assign(50, rng.uniform(5.0, 400.0));
      const auto e = dyn.error_vector_with_defect(tg, arrivals, defect, clk);
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_GE(e[i], m[i] - 1e-12);
      }
    }
  }
}

TEST_P(CircuitProperty, DelayFieldMatchesModelStatistics) {
  const auto nl = make_circuit();
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 3000, 0.0, GetParam().seed + 3);
  stats::Rng rng(GetParam().seed ^ 0x55);
  for (int t = 0; t < 8; ++t) {
    const ArcId a = rng.below(static_cast<std::uint32_t>(nl.arc_count()));
    double sum = 0.0;
    for (std::size_t k = 0; k < field.sample_count(); ++k) {
      sum += field.delay(a, k);
    }
    const double mean = sum / static_cast<double>(field.sample_count());
    EXPECT_NEAR(mean, model.mean(a), 0.02 * model.mean(a)) << "arc " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededCircuits, CircuitProperty,
    ::testing::Values(CircuitParam{301, 10, 6, 70, 8},
                      CircuitParam{302, 14, 9, 120, 12},
                      CircuitParam{303, 18, 12, 200, 15},
                      CircuitParam{304, 24, 16, 320, 18},
                      CircuitParam{305, 12, 20, 150, 10}),
    [](const ::testing::TestParamInfo<CircuitParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace sddd
