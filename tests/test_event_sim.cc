// Tests for the event-driven timed simulator: exact settle times on
// chains, correct final values under unequal pin delays, glitch counting,
// and agreement with the transition-mode approximation on hazard-free
// circuits.
#include <gtest/gtest.h>

#include "logicsim/event_sim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd::logicsim {
namespace {

using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;

TEST(EventSim, ChainSettleTimesAreExact) {
  Netlist nl("chain");
  const auto a = nl.add_input("a");
  const auto g1 = nl.add_gate(CellType::kNot, "g1", {a});
  const auto g2 = nl.add_gate(CellType::kBuf, "g2", {g1});
  nl.add_output(g2);
  nl.freeze();
  const Levelization lev(nl);
  const TimedEventSimulator sim(nl, lev);
  const std::vector<double> delays = {10.0, 7.0};

  const PatternPair pp{{false}, {true}};
  const auto r = sim.simulate(pp, delays);
  EXPECT_DOUBLE_EQ(r.settle_time[a], 0.0);
  EXPECT_DOUBLE_EQ(r.settle_time[g1], 10.0);
  EXPECT_DOUBLE_EQ(r.settle_time[g2], 17.0);
  EXPECT_EQ(r.event_count[g1], 1u);
  EXPECT_EQ(r.event_count[g2], 1u);
  EXPECT_FALSE(r.final_value[g1]);  // NOT of 1
  EXPECT_TRUE(r.final_value[g2] == r.final_value[g1]);
}

TEST(EventSim, NoLaunchNoEvents) {
  Netlist nl("quiet");
  const auto a = nl.add_input("a");
  const auto g = nl.add_gate(CellType::kNot, "g", {a});
  nl.add_output(g);
  nl.freeze();
  const Levelization lev(nl);
  const TimedEventSimulator sim(nl, lev);
  const std::vector<double> delays = {5.0};
  const PatternPair pp{{true}, {true}};
  const auto r = sim.simulate(pp, delays);
  EXPECT_EQ(r.total_events, 0u);
  EXPECT_DOUBLE_EQ(r.settle_time[g], 0.0);
}

TEST(EventSim, DetectsStaticHazardGlitch) {
  // Classic static-1 hazard: y = OR(a, NOT(a)) with a slow inverter.  On
  // a falling a, the OR sees 0/0 briefly -> glitch to 0 and back to 1.
  Netlist nl("hazard");
  const auto a = nl.add_input("a");
  const auto inv = nl.add_gate(CellType::kNot, "inv", {a});
  const auto y = nl.add_gate(CellType::kOr, "y", {a, inv});
  nl.add_output(y);
  nl.freeze();
  const Levelization lev(nl);
  const TimedEventSimulator sim(nl, lev);
  // arcs: inv.0 (a->inv), y.0 (a->y), y.1 (inv->y)
  std::vector<double> delays(nl.arc_count(), 0.0);
  delays[nl.arc_of(inv, 0)] = 20.0;  // slow inverter
  delays[nl.arc_of(y, 0)] = 2.0;
  delays[nl.arc_of(y, 1)] = 2.0;

  const PatternPair pp{{true}, {false}};  // a falls
  const auto r = sim.simulate(pp, delays);
  // y: starts 1, drops at t=2 (a's fall arrives first), recovers at t=22.
  EXPECT_TRUE(r.final_value[y]);
  EXPECT_EQ(r.event_count[y], 2u);  // glitch = two output changes
  EXPECT_DOUBLE_EQ(r.settle_time[y], 22.0);
}

TEST(EventSim, FinalValuesMatchLogicSimulation) {
  netlist::SynthSpec spec;
  spec.n_inputs = 12;
  spec.n_outputs = 8;
  spec.n_gates = 140;
  spec.depth = 12;
  spec.seed = 401;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const TimedEventSimulator sim(nl, lev);
  const BitSimulator logic(nl, lev);
  stats::Rng rng(31);
  std::vector<double> delays(nl.arc_count());
  for (auto& d : delays) d = rng.uniform(5.0, 50.0);
  for (int t = 0; t < 20; ++t) {
    PatternPair pp;
    pp.v1.resize(12);
    pp.v2.resize(12);
    for (std::size_t i = 0; i < 12; ++i) {
      pp.v1[i] = rng.bernoulli(0.5);
      pp.v2[i] = rng.bernoulli(0.5);
    }
    const auto r = sim.simulate(pp, delays);
    const auto expect = logic.simulate_single(pp.v2);
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      EXPECT_EQ(r.final_value[g], expect[g]) << "gate " << g;
    }
  }
}

TEST(EventSim, TransitionModeExactOnGlitchFreeRuns) {
  // On a run where NO net glitches (every waveform has at most one
  // transition) the transition-mode min/max arrival is not an
  // approximation but the exact settle time.  Single-PI launches keep
  // most runs glitch-free; runs with any multi-event net are skipped
  // (those are exactly where the approximation is allowed to deviate).
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 90;
  spec.depth = 10;
  spec.seed = 402;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 4, 0.0, 77);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const TimedEventSimulator timed(nl, lev);
  const BitSimulator logic(nl, lev);
  std::vector<double> delays(nl.arc_count());
  for (netlist::ArcId a = 0; a < nl.arc_count(); ++a) {
    delays[a] = field.delay(a, 0);
  }
  stats::Rng rng(32);
  std::size_t compared = 0;
  for (int t = 0; t < 60; ++t) {
    // Launch a single PI transition from a random base vector.
    PatternPair pp;
    pp.v1.resize(10);
    for (std::size_t i = 0; i < 10; ++i) pp.v1[i] = rng.bernoulli(0.5);
    pp.v2 = pp.v1;
    const std::size_t flip = rng.below(10);
    pp.v2[flip] = !pp.v2[flip];

    const auto r = timed.simulate(pp, delays);
    bool glitch_free = true;
    for (const auto c : r.event_count) glitch_free &= (c <= 1);
    if (!glitch_free) continue;

    const paths::TransitionGraph tg(logic, lev, pp);
    const auto arr = dyn.simulate_instance(tg, 0, std::nullopt);
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      if (!tg.toggles(g)) continue;
      ASSERT_EQ(r.event_count[g], 1u);
      ++compared;
      EXPECT_NEAR(arr[g], r.settle_time[g], 1e-9) << "gate " << g;
    }
  }
  EXPECT_GT(compared, 50u);
}

TEST(EventSim, SizeValidationAndBudget) {
  Netlist nl("tiny");
  const auto a = nl.add_input("a");
  const auto g = nl.add_gate(CellType::kNot, "g", {a});
  nl.add_output(g);
  nl.freeze();
  const Levelization lev(nl);
  const TimedEventSimulator sim(nl, lev);
  const PatternPair pp{{false}, {true}};
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW((void)sim.simulate(pp, wrong_size), std::invalid_argument);
  const std::vector<double> ok = {1.0};
  EXPECT_THROW((void)sim.simulate(pp, ok, /*max_events=*/0),
               std::runtime_error);
}

}  // namespace
}  // namespace sddd::logicsim
