// Tests for the deterministic parallel runtime: pool lifecycle, exception
// propagation, degenerate ranges, nested-use behavior, the prewarm
// enforcement on DynamicTimingSimulator, and the end-to-end determinism
// contract (identical experiment ranks at 1 vs. 4 threads).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "eval/experiment.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "obs/error.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd {
namespace {

/// Restores the global knob so tests cannot leak a thread-count override
/// into the rest of the suite (0 = auto).
struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::set_thread_count(0); }
};

TEST(ThreadPool, StartupShutdownRepeats) {
  for (std::size_t width : {1U, 2U, 4U}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      runtime::ThreadPool pool(width);
      EXPECT_EQ(pool.size(), width);
      std::vector<int> hits(97, 0);
      pool.run(hits.size(), [&](std::size_t i) { hits[i] = 1; });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 97);
    }
  }
}

TEST(ThreadPool, ZeroWidthMeansOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1U);
  int ran = 0;
  pool.run(1, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  runtime::ThreadPool pool(3);
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 if (i == 17) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.run(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedRunThrowsLogicError) {
  runtime::ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(4, [&](std::size_t) { pool.run(1, [](std::size_t) {}); }),
      std::logic_error);
  // Nesting across two distinct pools is refused as well: the outer
  // region marks the thread, and a second fork-join from inside it could
  // still deadlock the outer join.
  runtime::ThreadPool other(2);
  EXPECT_THROW(
      pool.run(4, [&](std::size_t) { other.run(1, [](std::size_t) {}); }),
      std::logic_error);
  // Serial (width-1) pools enforce the same contract.
  runtime::ThreadPool serial(1);
  EXPECT_THROW(
      serial.run(2, [&](std::size_t) { serial.run(1, [](std::size_t) {}); }),
      std::logic_error);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(4);
  int calls = 0;
  runtime::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  runtime::parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MatchesSerialResults) {
  const ThreadCountGuard guard;
  std::vector<double> serial(503), parallel(503);
  runtime::set_thread_count(1);
  runtime::parallel_for(serial.size(),
                        [&](std::size_t i) { serial[i] = 0.5 * double(i); });
  runtime::set_thread_count(4);
  EXPECT_EQ(runtime::thread_count(), 4U);
  runtime::parallel_for(parallel.size(),
                        [&](std::size_t i) { parallel[i] = 0.5 * double(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, NestedCallDegradesToSerial) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(4);
  std::vector<std::vector<int>> cells(8, std::vector<int>(16, 0));
  runtime::parallel_for(cells.size(), [&](std::size_t i) {
    EXPECT_TRUE(runtime::in_parallel_region());
    EXPECT_FALSE(runtime::would_parallelize(16));
    // Inner loop must run inline, not throw, and compute everything.
    runtime::parallel_for(cells[i].size(),
                          [&](std::size_t j) { cells[i][j] = 1; });
  });
  for (const auto& row : cells) {
    EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 16);
  }
}

TEST(ParallelFor, ChunkedCoversRangeOnce) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(3);
  std::vector<int> hits(101, 0);
  runtime::parallel_for_chunked(hits.size(), 7,
                                [&](std::size_t begin, std::size_t end) {
                                  EXPECT_LE(end - begin, 7U);
                                  for (std::size_t i = begin; i < end; ++i) {
                                    ++hits[i];
                                  }
                                });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 101);
  EXPECT_EQ(*std::max_element(hits.begin(), hits.end()), 1);
}

TEST(ParallelFor, MapReduceKeepsIndexOrder) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(4);
  // Non-commutative reduction: order changes the result, so equality with
  // the serial fold proves the fixed reduction order.
  const auto map = [](std::size_t i) { return 1.0 + double(i % 13) * 1e-7; };
  double serial = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) serial = serial / 3.0 + map(i);
  const double parallel = runtime::parallel_map_reduce<double>(
      1000, 0.0, map, [](double acc, double x) { return acc / 3.0 + x; });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ThreadCountKnobResolution) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(1);
  EXPECT_EQ(runtime::thread_count(), 1U);
  EXPECT_FALSE(runtime::would_parallelize(100));
  runtime::set_thread_count(5);
  EXPECT_EQ(runtime::thread_count(), 5U);
  EXPECT_TRUE(runtime::would_parallelize(2));
  EXPECT_FALSE(runtime::would_parallelize(1));
  runtime::set_thread_count(0);
  EXPECT_GE(runtime::thread_count(), 1U);
}

struct SimFixture {
  netlist::Netlist nl;
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField field;

  SimFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 10;
          spec.n_outputs = 6;
          spec.n_gates = 60;
          spec.depth = 8;
          spec.seed = 77;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        model(nl, lib),
        field(model, 40, 0.03, 5) {}
};

paths::TransitionGraph toggling_tg(const SimFixture& f, std::uint64_t seed) {
  const logicsim::BitSimulator sim(f.nl, f.lev);
  stats::Rng rng(seed);
  logicsim::PatternPair p;
  p.v1.resize(f.nl.inputs().size());
  p.v2.resize(f.nl.inputs().size());
  for (std::size_t i = 0; i < p.v1.size(); ++i) {
    p.v1[i] = rng.bernoulli(0.5);
    p.v2[i] = !p.v1[i];
  }
  return paths::TransitionGraph(sim, f.lev, p);
}

TEST(DynamicSimPrewarm, LazyMemoizationRefusedInParallelRegion) {
  const ThreadCountGuard guard;
  const SimFixture f;
  const timing::DynamicTimingSimulator dyn(f.field, f.lev);
  EXPECT_FALSE(dyn.prewarmed());
  const auto tg = toggling_tg(f, 3);
  runtime::set_thread_count(2);
  // Concurrent lazy cache fills would race; the simulator must refuse
  // instead of silently corrupting delay_cache_.
  EXPECT_THROW(
      runtime::parallel_for(4, [&](std::size_t) { (void)dyn.simulate(tg); }),
      std::logic_error);
  // After prewarm the same shared use is legal and succeeds.
  dyn.prewarm();
  std::vector<timing::ArrivalMatrix> out(4);
  runtime::parallel_for(4, [&](std::size_t i) { out[i] = dyn.simulate(tg); });
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[0].rows, out[i].rows);
  }
}

TEST(DynamicSimPrewarm, PrewarmedSimulatorMatchesLazyResults) {
  const ThreadCountGuard guard;
  const SimFixture f;
  const timing::DynamicTimingSimulator lazy(f.field, f.lev);
  const timing::DynamicTimingSimulator warm(f.field, f.lev);
  warm.prewarm();
  EXPECT_TRUE(warm.prewarmed());
  warm.prewarm();  // idempotent

  const auto tg = toggling_tg(f, 3);
  const auto a = lazy.simulate(tg);
  const auto b = warm.simulate(tg);
  EXPECT_EQ(a.rows, b.rows);
}

eval::ExperimentConfig determinism_config() {
  eval::ExperimentConfig config;
  config.mc_samples = 60;
  config.n_chips = 4;
  config.max_suspects = 80;
  config.calibration_sites = 6;
  config.pattern_config.paths_per_site = 2;
  config.pattern_config.site_search_tries = 48;
  config.seed = 19;
  return config;
}

TEST(CancelToken, PollThrowsTypedErrors) {
  runtime::CancelToken token;
  token.poll();  // no cancel, no deadline: no-op
  token.set_deadline_after_seconds(60.0);
  token.poll();  // deadline far away: still a no-op
  token.set_deadline_ns(1);  // epoch + 1ns: long passed
  EXPECT_TRUE(token.deadline_passed());
  EXPECT_THROW(token.poll(), DeadlineError);
  token.set_deadline_ns(0);
  token.request_cancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_THROW(token.poll(), CancelledError);
  // Ambient polling: no token installed = no-op, installed = throws.
  runtime::poll_cancellation();
  {
    runtime::ScopedCancelToken scope(&token);
    EXPECT_EQ(runtime::current_cancel_token(), &token);
    EXPECT_THROW(runtime::poll_cancellation(), CancelledError);
  }
  EXPECT_EQ(runtime::current_cancel_token(), nullptr);
  runtime::poll_cancellation();
}

TEST(CancelToken, HardCancelStopsParallelFor) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(4);
  runtime::CancelToken token;
  runtime::ScopedCancelToken scope(&token);
  std::atomic<int> started{0};
  try {
    runtime::parallel_for(200, [&](std::size_t i) {
      started.fetch_add(1, std::memory_order_relaxed);
      if (i == 0) token.request_cancel();
      runtime::poll_cancellation();
    });
    FAIL() << "expected CancelledError";
  } catch (const CancelledError&) {
  }
  // The cancel keeps workers from claiming further indices: far fewer than
  // the full range ran (the bound is loose to stay schedule-independent).
  EXPECT_LT(started.load(), 200);
}

TEST(CancelToken, SerialLoopObservesCancel) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(1);
  runtime::CancelToken token;
  runtime::ScopedCancelToken scope(&token);
  int ran = 0;
  try {
    runtime::parallel_for(50, [&](std::size_t) {
      ++ran;
      token.request_cancel();
      runtime::poll_cancellation();
    });
    FAIL() << "expected CancelledError";
  } catch (const CancelledError&) {
  }
  EXPECT_EQ(ran, 1);
}

TEST(CancelToken, DeadlineIsCooperativeInPool) {
  const ThreadCountGuard guard;
  runtime::set_thread_count(4);
  runtime::CancelToken token;
  token.set_deadline_ns(1);  // already expired
  runtime::ScopedCancelToken scope(&token);
  // A deadline alone never aborts the loop - only a poll() can, and this
  // body chooses not to poll.  All indices run to completion.
  std::atomic<int> ran{0};
  runtime::parallel_for(
      50, [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 50);
  // ...and a body that does poll sees the DeadlineError, not a hard stop.
  EXPECT_THROW(
      runtime::parallel_for(4,
                            [&](std::size_t) { runtime::poll_cancellation(); }),
      DeadlineError);
}

TEST(Determinism, ExperimentBitIdenticalAcrossThreadCounts) {
  const ThreadCountGuard guard;
  netlist::SynthSpec spec;
  spec.name = "detckt";
  spec.n_inputs = 14;
  spec.n_outputs = 8;
  spec.n_gates = 90;
  spec.depth = 9;
  spec.seed = 41;
  const auto nl = netlist::synthesize(spec);

  runtime::set_thread_count(1);
  const auto serial = eval::run_diagnosis_experiment(nl, determinism_config());
  runtime::set_thread_count(4);
  const auto parallel =
      eval::run_diagnosis_experiment(nl, determinism_config());

  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  EXPECT_EQ(serial.clk, parallel.clk);
  for (std::size_t t = 0; t < serial.trials.size(); ++t) {
    const auto& a = serial.trials[t];
    const auto& b = parallel.trials[t];
    EXPECT_EQ(a.failed_test, b.failed_test) << "trial " << t;
    EXPECT_EQ(a.injection_attempts, b.injection_attempts) << "trial " << t;
    EXPECT_EQ(a.chip.defect_arc, b.chip.defect_arc) << "trial " << t;
    EXPECT_EQ(a.chip.defect_size, b.chip.defect_size) << "trial " << t;
    EXPECT_EQ(a.n_suspects, b.n_suspects) << "trial " << t;
    EXPECT_EQ(a.rank_of_true, b.rank_of_true) << "trial " << t;
    EXPECT_EQ(a.logic_baseline_rank, b.logic_baseline_rank) << "trial " << t;
  }
  for (const auto m : serial.config.methods) {
    for (const int k : {1, 3, 5}) {
      EXPECT_EQ(serial.success_rate(m, k), parallel.success_rate(m, k));
    }
  }
}

}  // namespace
}  // namespace sddd
