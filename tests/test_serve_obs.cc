// Tests for the live-service observability layer: rolling-window metrics
// (fake-clock bucket rotation, thread-count-independent merges), the
// slow-request ring's deterministic eviction, trace-id canonicalization,
// the `stats` wire op under shed, drain-time metrics flushing, and the
// one-trace-id-per-exchange retry contract - the window/ring pieces as
// units, the rest in-process over a real unix socket.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "netlist/synth.h"
#include "obs/error.h"
#include "obs/expo.h"
#include "obs/obs.h"
#include "obs/window.h"
#include "store/client.h"
#include "store/query.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"

namespace sddd {
namespace {

// ---------------------------------------------------------------------------
// Rolling window

TEST(WindowObs, FakeClockDrivesBucketRotation) {
  std::uint64_t now = 1000;
  obs::WindowRegistry reg([&now] { return now; });
  obs::RollingCounter& c = reg.counter("req");

  c.add(3);
  EXPECT_EQ(c.total_in_window(), 3u);

  now = 1059;  // 59s later: the t=1000 bucket is still inside the horizon
  c.add(2);
  EXPECT_EQ(c.total_in_window(), 5u);

  now = 1060;  // 60s later: the t=1000 bucket ages out, t=1059 survives
  EXPECT_EQ(c.total_in_window(), 2u);

  now = 1119;  // everything aged out
  EXPECT_EQ(c.total_in_window(), 0u);

  // Ring-slot reuse: a second landing on the same slot one revolution
  // later must reset the stale cell, not add to it.
  now = 2000;
  c.add(7);
  now = 2000 + obs::kWindowSlots;
  c.add(1);
  EXPECT_EQ(c.total_in_window(), 1u);
}

TEST(WindowObs, HistogramWindowsSumsAndQuantiles) {
  std::uint64_t now = 50;
  obs::WindowRegistry reg([&now] { return now; });
  const double bounds[] = {100.0, 1000.0, 10000.0};
  obs::RollingHistogram& h =
      reg.histogram("lat_us", std::span<const double>(bounds));

  for (int i = 0; i < 100; ++i) h.record(80);
  h.record(5000);

  obs::WindowSnapshot snap = reg.snapshot();
  const obs::WindowHistogramData& hd = snap.histograms.at("lat_us");
  EXPECT_EQ(hd.total(), 101u);
  EXPECT_EQ(hd.sum, 100u * 80u + 5000u);
  EXPECT_LE(hd.quantile(0.5), 100.0);
  EXPECT_GT(hd.quantile(0.999), 1000.0);

  now = 50 + obs::kWindowHorizonSeconds;  // the whole minute ages out
  snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("lat_us").total(), 0u);
}

/// Records a fixed multiset of (second, value) events split across
/// `nthreads` writers and returns the snapshot JSON.  The clock only
/// advances between rounds, so the event multiset is identical at any
/// thread count - only the shard assignment varies.
std::string window_json_with_threads(std::size_t nthreads) {
  std::uint64_t now = 7000;
  obs::WindowRegistry reg([&now] { return now; });
  const double bounds[] = {100.0, 500.0, 2500.0, 10000.0};
  reg.counter("req");
  reg.histogram("lat_us", std::span<const double>(bounds));
  for (std::uint64_t s = 0; s < 5; ++s) {
    now = 7000 + s;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < nthreads; ++t) {
      workers.emplace_back([&reg, &bounds, s, t, nthreads] {
        for (std::size_t i = t; i < 400; i += nthreads) {
          reg.counter("req").add(1);
          reg.histogram("lat_us", std::span<const double>(bounds))
              .record((i * 37 + s * 11) % 9000);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  return reg.snapshot().to_json();
}

TEST(WindowObs, MergeIsByteIdenticalAcrossThreadCounts) {
  EXPECT_EQ(window_json_with_threads(1), window_json_with_threads(4));
}

// ---------------------------------------------------------------------------
// Slow-request ring + trace ids

obs::SlowRequest slow(const std::string& id, std::uint64_t us) {
  obs::SlowRequest r;
  r.trace_id = id;
  r.total_us = us;
  return r;
}

TEST(SlowRingObs, EvictionIsDeterministicTiesKeepTheEarlierEntry) {
  obs::SlowRequestRing ring(3);
  ring.insert(slow("a", 100));
  ring.insert(slow("b", 300));
  ring.insert(slow("c", 200));

  // Full ring: a newcomer that only TIES the current minimum is rejected.
  ring.insert(slow("d", 100));
  std::vector<obs::SlowRequest> top = ring.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].trace_id, "b");
  EXPECT_EQ(top[1].trace_id, "c");
  EXPECT_EQ(top[2].trace_id, "a");

  // A strictly slower newcomer evicts the minimum.
  ring.insert(slow("e", 150));
  top = ring.top();
  EXPECT_EQ(top[2].trace_id, "e");

  // Ties among survivors sort by insertion order (earlier seq first).
  ring.insert(slow("f", 300));  // evicts e
  top = ring.top();
  EXPECT_EQ(top[0].trace_id, "b");
  EXPECT_EQ(top[1].trace_id, "f");
  EXPECT_EQ(top[2].trace_id, "c");
}

TEST(TraceIdObs, CanonicalRoundTripAndValidation) {
  EXPECT_EQ(obs::hex16(0x1f), "000000000000001f");
  EXPECT_EQ(obs::trace_key("000000000000001f"), 0x1fu);
  const std::string canonical = obs::hex16(0xdeadbeefcafef00dULL);
  EXPECT_EQ(obs::hex16(obs::trace_key(canonical)), canonical);

  EXPECT_TRUE(obs::valid_trace_id("load-gen.7"));
  EXPECT_TRUE(obs::valid_trace_id(canonical));
  EXPECT_FALSE(obs::valid_trace_id(""));
  EXPECT_FALSE(obs::valid_trace_id("has space"));
  EXPECT_FALSE(obs::valid_trace_id(std::string(65, 'a')));

  // Non-canonical ids hash to a stable (per-id) flight-recorder key.
  EXPECT_EQ(obs::trace_key("load-gen.7"), obs::trace_key("load-gen.7"));
  EXPECT_NE(obs::trace_key("load-gen.7"), obs::trace_key("load-gen.8"));
}

// ---------------------------------------------------------------------------
// Server-level: stats op, drain flush, retry identity

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

netlist::Netlist obs_netlist(const std::string& name, std::uint64_t seed) {
  netlist::SynthSpec spec;
  spec.name = name;
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 50;
  spec.depth = 7;
  spec.seed = seed;
  return netlist::synthesize(spec);
}

std::string build_obs_store_and_request(const std::string& name,
                                        std::uint64_t seed,
                                        std::string* request) {
  const auto nl = obs_netlist(name, seed);
  const auto path = temp_path(name + ".dict");
  store::StoreBuildConfig config;
  config.mc_samples = 40;
  config.pattern_sites = 3;
  config.max_patterns = 8;
  config.seed = 31;
  store::build_dictionary_store(nl, config, path.string());
  const store::DictionaryStore st(path.string());
  const auto sampled = store::sample_failing_chips(nl, st, 2);
  EXPECT_FALSE(sampled.empty());
  std::vector<store::ChipQuery> chips;
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    chips.push_back(
        store::ChipQuery{"chip" + std::to_string(t), sampled[t].B});
  }
  *request = store::make_diagnose_request(st.run_id(), "e", 5,
                                          /*deadline_ms=*/0, chips);
  return path.string();
}

TEST(ServeObs, StatsAnswersUnderShedAndCountsIt) {
  std::string request;
  const std::string path =
      build_obs_store_and_request("obsshed", 71, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("obsshed.sock").string();
  cfg.max_inflight = 0;  // deterministic: every diagnose sheds
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  const std::string stamped =
      store::payload_with_trace_id(request, "feedfacecafe0001");
  std::string id, payload;
  ASSERT_TRUE(store::split_response_envelope(client.request(stamped), &id,
                                             &payload));
  EXPECT_EQ(id, "feedfacecafe0001");
  EXPECT_NE(payload.find("\"error\":\"overloaded\""), std::string::npos)
      << payload;

  // stats bypasses the in-flight budget (like health), echoes the trace
  // id, and reports the shed in the rolling window.
  std::string sid, stats_payload;
  ASSERT_TRUE(store::split_response_envelope(
      client.request("{\"op\":\"stats\",\"trace_id\":\"deadbeef00000001\"}"),
      &sid, &stats_payload));
  EXPECT_EQ(sid, "deadbeef00000001");

  const store::JsonValue stats = store::parse_json(stats_payload);
  EXPECT_EQ(stats.get_string("op"), "stats");
  const store::JsonValue* window = stats.get("window");
  ASSERT_NE(window, nullptr);
  const store::JsonValue* wcounters = window->get("counters");
  ASSERT_NE(wcounters, nullptr);
  EXPECT_GE(wcounters->get_number("serve.shed"), 1.0);
  EXPECT_GE(wcounters->get_number("serve.requests"), 1.0);
  // The shed diagnose is in the slow ring, under ITS trace id.
  EXPECT_NE(stats_payload.find("\"trace_id\":\"feedfacecafe0001\""),
            std::string::npos)
      << stats_payload;

  // The Prometheus rendering of the same snapshot parses back out of the
  // stats payload and carries the window counters.
  std::string pid, prom_payload;
  ASSERT_TRUE(store::split_response_envelope(
      client.request("{\"op\":\"stats\",\"format\":\"prom\"}"), &pid,
      &prom_payload));
  const store::JsonValue prom = store::parse_json(prom_payload);
  const std::string text = prom.get_string("text");
  EXPECT_NE(text.find("sddd_win_serve_shed"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE"), std::string::npos) << text;

  server.request_drain();
  server.wait();
}

TEST(ServeObs, DrainFlushesMetricsThroughTheExitWriter) {
  const auto metrics_path = temp_path("obsflush_metrics.json");
  std::filesystem::remove(metrics_path);
  obs::set_metrics_out_path(metrics_path.string());

  std::string request;
  const std::string path =
      build_obs_store_and_request("obsflush", 73, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("obsflush.sock").string();
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  const std::string response = client.request(request);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  server.request_drain();
  server.wait();

  // wait() flushed through the same writer the atexit hook uses, so the
  // snapshot is already complete on disk - not deferred to process exit.
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << metrics_path;
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("serve.request_us"), std::string::npos);
  EXPECT_FALSE(body.empty());
  EXPECT_EQ(body.back(), '\n');

  obs::set_metrics_out_path("");  // don't leak the path into other tests
}

TEST(ServeObs, RetryReplaysOneTraceIdAcrossAttempts) {
  std::string request;
  const std::string path =
      build_obs_store_and_request("obsretry", 79, &request);

  store::ServerConfig cfg;
  cfg.store_paths = {path};
  cfg.unix_socket = temp_path("obsretry.sock").string();
  cfg.max_inflight = 0;  // every attempt sheds; the budget exhausts
  store::DiagnosisServer server(cfg);
  server.start();

  auto client = store::ServeClient::connect(cfg.unix_socket, -1);
  store::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 0.001;
  policy.max_backoff_s = 0.002;
  store::RetryStats stats;
  EXPECT_THROW(store::request_with_retry(client, cfg.unix_socket, -1, request,
                                         policy, &stats),
               IoError);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.sheds, 3u);
  ASSERT_EQ(stats.trace_id.size(), 16u) << stats.trace_id;

  // Every attempt carried the SAME client-minted id: the window saw three
  // sheds, and the slow ring shows the one identity.
  std::string sid, stats_payload;
  ASSERT_TRUE(store::split_response_envelope(
      client.request("{\"op\":\"stats\"}"), &sid, &stats_payload));
  const store::JsonValue parsed = store::parse_json(stats_payload);
  const store::JsonValue* window = parsed.get("window");
  ASSERT_NE(window, nullptr);
  const store::JsonValue* wcounters = window->get("counters");
  ASSERT_NE(wcounters, nullptr);
  EXPECT_EQ(wcounters->get_number("serve.shed"), 3.0);
  const std::string needle = "\"trace_id\":\"" + stats.trace_id + "\"";
  std::size_t occurrences = 0;
  for (std::size_t pos = stats_payload.find(needle);
       pos != std::string::npos; pos = stats_payload.find(needle, pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 3u) << stats_payload;

  server.request_drain();
  server.wait();
}

}  // namespace
}  // namespace sddd
