// Tests for the structural-Verilog subset reader/writer: the documented
// grammar, error reporting, round-trips (including via .bench) and
// functional equivalence after conversion.
#include <gtest/gtest.h>

#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "netlist/verilog_io.h"
#include "stats/rng.h"

namespace sddd::netlist {
namespace {

constexpr std::string_view kC17Verilog = R"(
// c17 benchmark, structural form
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g1 (N10, N1, N3);
  nand g2 (N11, N3, N6);
  nand g3 (N16, N2, N11);
  nand g4 (N19, N11, N7);
  nand g5 (N22, N10, N16);
  nand g6 (N23, N16, N19);
endmodule
)";

TEST(VerilogIo, ParsesC17) {
  const auto nl = parse_verilog_string(kC17Verilog);
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 11u);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    if (nl.gate(g).type != CellType::kInput) {
      EXPECT_EQ(nl.gate(g).type, CellType::kNand);
    }
  }
}

TEST(VerilogIo, MatchesBenchVersionFunctionally) {
  const auto from_verilog = parse_verilog_string(kC17Verilog);
  const auto from_bench = parse_bench_string(c17_bench_text(), "c17");
  const Levelization lev_v(from_verilog);
  const Levelization lev_b(from_bench);
  const logicsim::BitSimulator sim_v(from_verilog, lev_v);
  const logicsim::BitSimulator sim_b(from_bench, lev_b);
  // Exhaustive over the 32 input combinations.  Input ORDER differs
  // (N1..N7 vs 1,2,3,6,7 - same order here by construction).
  for (unsigned mask = 0; mask < 32; ++mask) {
    logicsim::Pattern p(5);
    for (unsigned i = 0; i < 5; ++i) p[i] = (mask >> i) & 1;
    const auto v = sim_v.simulate_single(p);
    const auto b = sim_b.simulate_single(p);
    for (std::size_t o = 0; o < 2; ++o) {
      EXPECT_EQ(v[from_verilog.outputs()[o]], b[from_bench.outputs()[o]])
          << "mask " << mask << " output " << o;
    }
  }
}

TEST(VerilogIo, HandlesCommentsAndOptionalInstanceNames) {
  const auto nl = parse_verilog_string(R"(
/* block
   comment */
module m (a, y);
  input a;   // trailing comment
  output y;
  not (y, a);
endmodule
)");
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.gate(nl.find("y")).type, CellType::kNot);
}

TEST(VerilogIo, SupportsDffPrimitive) {
  const auto nl = parse_verilog_string(R"(
module seq (clkless_d, q);
  input clkless_d;
  output q;
  dff ff (q, clkless_d);
endmodule
)");
  EXPECT_EQ(nl.dff_count(), 1u);
}

TEST(VerilogIo, ForwardReferencesAllowed) {
  const auto nl = parse_verilog_string(R"(
module fwd (a, y);
  input a;
  output y;
  buf (y, w);     // w defined below
  not (w, a);
  wire w;
endmodule
)");
  EXPECT_EQ(nl.gate(nl.find("w")).type, CellType::kNot);
}

TEST(VerilogIo, ErrorsCarryLineNumbers) {
  try {
    parse_verilog_string("module m (a);\n  input a;\n  frob (x, a);\nendmodule\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(VerilogIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_verilog_string("module m (a)\nendmodule\n"),
               std::runtime_error);  // missing ';'
  EXPECT_THROW(parse_verilog_string("module m (a);\n  nand (y);\nendmodule\n"),
               std::runtime_error);  // too few terminals
  EXPECT_THROW(parse_verilog_string("module m (y);\n  output y;\nendmodule\n"),
               std::runtime_error);  // y never driven
  EXPECT_THROW(parse_verilog_string("module m (a);\n  input a;\n"),
               std::runtime_error);  // no endmodule
}

TEST(VerilogIo, RoundTripPreservesStructure) {
  netlist::SynthSpec spec;
  spec.n_inputs = 10;
  spec.n_outputs = 7;
  spec.n_gates = 80;
  spec.depth = 9;
  spec.seed = 601;
  const auto nl = synthesize(spec);
  const auto nl2 = parse_verilog_string(to_verilog_string(nl));
  EXPECT_EQ(nl2.gate_count(), nl.gate_count());
  EXPECT_EQ(nl2.arc_count(), nl.arc_count());
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const GateId h = nl2.find(nl.gate(g).name);
    ASSERT_NE(h, kInvalidGate);
    EXPECT_EQ(nl2.gate(h).type, nl.gate(g).type);
  }
}

TEST(VerilogIo, CrossFormatRoundTrip) {
  // verilog -> netlist -> bench -> netlist -> verilog: stable structure.
  const auto a = parse_verilog_string(kC17Verilog);
  const auto b = parse_bench_string(to_bench_string(a), "c17");
  const auto c = parse_verilog_string(to_verilog_string(b));
  EXPECT_EQ(c.gate_count(), a.gate_count());
  EXPECT_EQ(c.arc_count(), a.arc_count());
}

}  // namespace
}  // namespace sddd::netlist
