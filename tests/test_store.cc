// Tests for the persistent dictionary store: build determinism, the
// StoreQueryEngine's bit-identity to an in-process Diagnoser over the
// same dictionary world, and the loader's corruption taxonomy (truncated
// tails, single bit flips, version and fingerprint mismatches) with the
// offending section named every time.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "obs/error.h"
#include "obs/faults.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "store/query.h"
#include "store/store.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd {
namespace {

struct FaultSpecGuard {
  ~FaultSpecGuard() { obs::set_fault_spec(""); }
};

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::path(::testing::TempDir()) / name;
}

void write_raw(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

netlist::Netlist store_netlist() {
  netlist::SynthSpec spec;
  spec.name = "storetest";
  spec.n_inputs = 10;
  spec.n_outputs = 6;
  spec.n_gates = 50;
  spec.depth = 7;
  spec.seed = 23;
  return netlist::synthesize(spec);
}

store::StoreBuildConfig small_config() {
  store::StoreBuildConfig config;
  config.mc_samples = 40;
  config.pattern_sites = 3;
  config.max_patterns = 8;
  config.seed = 31;
  return config;
}

std::uint64_t injected_faults() {
  const auto counters = obs::MetricsRegistry::instance().snapshot().counters;
  const auto it = counters.find("fault.injected");
  return it == counters.end() ? 0 : it->second;
}

TEST(Store, SerializationIsDeterministic) {
  const auto nl = store_netlist();
  store::StoreBuildInfo a_info, b_info;
  const std::string a =
      store::serialize_dictionary_store(nl, small_config(), &a_info);
  const std::string b =
      store::serialize_dictionary_store(nl, small_config(), &b_info);
  EXPECT_EQ(a, b) << "same netlist + config must serialize byte-identically";
  EXPECT_EQ(a_info.fingerprint, b_info.fingerprint);
  EXPECT_GT(a_info.n_patterns, 0u);
  EXPECT_EQ(a.size(), a_info.bytes);
}

TEST(Store, RoundTripMatchesInMemoryDiagnoser) {
  const auto nl = store_netlist();
  const auto path = temp_path("roundtrip.dict");
  const auto config = small_config();
  store::build_dictionary_store(nl, config, path.string());

  const store::DictionaryStore st(path.string());
  EXPECT_EQ(st.circuit(), nl.name());
  EXPECT_EQ(st.mc_samples(), config.mc_samples);
  EXPECT_TRUE(store::verify_store_file(path.string()).ok);

  // The in-memory twin: the exact dictionary world the store serialized
  // (same field seeds, size model and clk), scored by the Diagnoser.
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib(config.library);
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField dict_field(model, config.mc_samples,
                                      config.global_weight,
                                      config.seed ^ 0xd1c7ULL);
  const logicsim::BitSimulator logic_sim(nl, lev);
  const timing::DynamicTimingSimulator dict_sim(dict_field, lev);
  const defect::DefectSizeModel size_model(
      model.mean_cell_delay(), config.defect_mean_lo, config.defect_mean_hi,
      config.defect_three_sigma, config.seed ^ 0x5e1fULL);
  diagnosis::DiagnoserConfig dcfg;
  dcfg.max_suspects = config.max_suspects;
  dcfg.capture_phi = true;
  const diagnosis::Diagnoser diagnoser(dict_sim, logic_sim, lev, size_model,
                                       dcfg);

  const auto chips = store::sample_failing_chips(nl, st, 3);
  ASSERT_FALSE(chips.empty());
  const auto patterns = st.patterns();
  const std::vector<diagnosis::Method> methods = {
      diagnosis::Method::kSimI, diagnosis::Method::kSimII,
      diagnosis::Method::kSimIII, diagnosis::Method::kRev};
  const store::StoreQueryEngine engine(st);
  for (const auto& chip : chips) {
    const auto from_store = engine.diagnose(chip.B, methods, true, true);
    const auto in_memory =
        diagnoser.diagnose(patterns, chip.B, methods, st.clk());
    ASSERT_EQ(from_store.suspects, in_memory.suspects);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      for (std::size_t s = 0; s < from_store.suspects.size(); ++s) {
        // Bit-identical, not approximately equal: the store holds the raw
        // doubles the Diagnoser would have computed.
        EXPECT_EQ(from_store.scores[m][s], in_memory.scores[m][s]);
        EXPECT_EQ(from_store.keys[m][s], in_memory.keys[m][s]);
      }
    }
    ASSERT_EQ(from_store.phi.size(), in_memory.phi.size());
    for (std::size_t s = 0; s < from_store.phi.size(); ++s) {
      EXPECT_EQ(from_store.phi[s], in_memory.phi[s]);
    }
  }
}

TEST(Store, TruncatedTailNamesTheSection) {
  const auto nl = store_netlist();
  const std::string bytes =
      store::serialize_dictionary_store(nl, small_config());
  const auto path = temp_path("truncated.dict");
  write_raw(path, bytes.substr(0, bytes.size() - 16));
  const auto report = store::verify_store_file(path.string());
  EXPECT_FALSE(report.ok);
  // "sizes" is the final section, so a cut tail lands there.
  EXPECT_EQ(report.bad_section, "sizes") << report.message;
}

TEST(Store, SingleBitFlipNamesTheSection) {
  const auto nl = store_netlist();
  const auto good_path = temp_path("bitflip_good.dict");
  store::build_dictionary_store(nl, small_config(), good_path.string());
  const store::DictionaryStore good(good_path.string());
  std::ifstream in(good_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (const auto& sec : good.sections()) {
    std::string corrupt = bytes;
    corrupt[sec.offset + sec.bytes / 2] ^= 0x10;
    const auto path = temp_path("bitflip_" + sec.name + ".dict");
    write_raw(path, corrupt);
    const auto report = store::verify_store_file(path.string());
    EXPECT_FALSE(report.ok) << sec.name;
    EXPECT_EQ(report.bad_section, sec.name) << report.message;
  }
}

TEST(Store, VersionMismatchRejected) {
  const auto nl = store_netlist();
  std::string bytes = store::serialize_dictionary_store(nl, small_config());
  // Locate the header checksum: the u64 at position p equal to the FNV of
  // every byte before p.  Scanning is format-agnostic, so this test keeps
  // working if header fields are added.
  std::size_t crc_pos = 0;
  for (std::size_t p = 16; p + 8 <= std::min<std::size_t>(bytes.size(), 4096);
       ++p) {
    std::uint64_t at = 0;
    std::memcpy(&at, bytes.data() + p, 8);
    if (at == obs::ledger_fnv1a64(std::string_view(bytes.data(), p))) {
      crc_pos = p;
      break;
    }
  }
  ASSERT_GT(crc_pos, 0u) << "header checksum not found";
  // Bump the format version (u32 after the 8-byte magic) and re-seal the
  // header so the version check, not the checksum, does the rejecting.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  const std::uint64_t crc =
      obs::ledger_fnv1a64(std::string_view(bytes.data(), crc_pos));
  std::memcpy(bytes.data() + crc_pos, &crc, 8);
  const auto path = temp_path("version.dict");
  write_raw(path, bytes);
  const auto report = store::verify_store_file(path.string());
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.bad_section, "header");
  EXPECT_NE(report.message.find("version"), std::string::npos)
      << report.message;
}

TEST(Store, FingerprintMismatchRejected) {
  const auto nl = store_netlist();
  const auto path = temp_path("fingerprint.dict");
  const auto info =
      store::build_dictionary_store(nl, small_config(), path.string());
  // The store opens under its own fingerprint, and refuses a foreign one.
  const store::DictionaryStore st(path.string(), info.fingerprint);
  EXPECT_EQ(st.run_id(), info.run_id);
  try {
    const store::DictionaryStore wrong(path.string(), info.fingerprint ^ 1);
    FAIL() << "foreign fingerprint must be rejected";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST(Store, FaultSeamsCoverOpenAndChecksum) {
  const auto nl = store_netlist();
  const auto path = temp_path("faults.dict");
  store::build_dictionary_store(nl, small_config(), path.string());

  FaultSpecGuard guard;
  const std::uint64_t before = injected_faults();
  obs::set_fault_spec("store.open@*");
  EXPECT_THROW(store::DictionaryStore(path.string()), StoreError);
  EXPECT_GT(injected_faults(), before);

  obs::set_fault_spec("store.crc@*");
  const auto report = store::verify_store_file(path.string());
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace sddd
