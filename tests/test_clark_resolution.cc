// Tests for the analytic (Clark) SSTA and the diagnosis resolution
// analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "atpg/pdf_atpg.h"
#include "defect/defect_model.h"
#include "diagnosis/dictionary.h"
#include "diagnosis/resolution.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/clark_ssta.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"
#include "timing/ssta.h"

namespace sddd {
namespace {

using netlist::ArcId;
using netlist::CellType;
using netlist::GateId;
using netlist::Levelization;
using netlist::Netlist;
using timing::ClarkStaticTiming;
using timing::GaussianArrival;
using timing::clark_max;

TEST(ClarkMax, DegenerateCases) {
  const GaussianArrival x{10.0, 0.0};
  const GaussianArrival y{5.0, 0.0};
  const auto m = clark_max(x, y);
  EXPECT_DOUBLE_EQ(m.mean, 10.0);
  EXPECT_DOUBLE_EQ(m.var, 0.0);
}

TEST(ClarkMax, SymmetricCase) {
  // max of two iid N(0, 1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const GaussianArrival x{0.0, 1.0};
  const auto m = clark_max(x, x);
  EXPECT_NEAR(m.mean, 1.0 / std::sqrt(M_PI), 1e-9);
  EXPECT_NEAR(m.var, 1.0 - 1.0 / M_PI, 1e-9);
}

TEST(ClarkMax, DominatedInputVanishes) {
  const GaussianArrival big{100.0, 4.0};
  const GaussianArrival small{10.0, 4.0};
  const auto m = clark_max(big, small);
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(m.var, 4.0, 1e-6);
}

TEST(ClarkMax, MatchesMonteCarlo) {
  const GaussianArrival x{100.0, 25.0};
  const GaussianArrival y{95.0, 64.0};
  stats::Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double xv = 100.0 + 5.0 * stats::inverse_normal_cdf(rng.uniform01());
    const double yv = 95.0 + 8.0 * stats::inverse_normal_cdf(rng.uniform01());
    const double m = std::max(xv, yv);
    sum += m;
    sq += m * m;
  }
  const double mc_mean = sum / n;
  const double mc_var = sq / n - mc_mean * mc_mean;
  const auto m = clark_max(x, y);
  EXPECT_NEAR(m.mean, mc_mean, 0.1);
  EXPECT_NEAR(m.var, mc_var, 1.0);
}

TEST(GaussianArrival, CriticalProbabilityAndQuantile) {
  const GaussianArrival g{100.0, 25.0};
  EXPECT_NEAR(g.critical_probability(100.0), 0.5, 1e-9);
  EXPECT_NEAR(g.critical_probability(110.0), 1.0 - 0.97725, 1e-4);
  EXPECT_NEAR(g.quantile(0.5), 100.0, 1e-9);
  EXPECT_GT(g.quantile(0.99), 110.0);
}

TEST(ClarkSsta, ExactOnChains) {
  // On a fanout-free chain the analytic result is exact: sum of Normals.
  Netlist nl("chain");
  const auto a = nl.add_input("a");
  GateId prev = a;
  for (int i = 0; i < 5; ++i) {
    prev = nl.add_gate(CellType::kNot, "n" + std::to_string(i), {prev});
  }
  nl.add_output(prev);
  nl.freeze();
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const ClarkStaticTiming clark(model, lev);
  double mean = 0.0;
  double var = 0.0;
  for (ArcId arc = 0; arc < nl.arc_count(); ++arc) {
    mean += model.arc_rv(arc).mean();
    var += model.arc_rv(arc).stddev() * model.arc_rv(arc).stddev();
  }
  EXPECT_NEAR(clark.circuit_delay().mean, mean, 1e-9);
  EXPECT_NEAR(clark.circuit_delay().var, var, 1e-9);
}

TEST(ClarkSsta, TracksMonteCarloOnRealCircuits) {
  netlist::SynthSpec spec;
  spec.n_inputs = 14;
  spec.n_outputs = 9;
  spec.n_gates = 160;
  spec.depth = 12;
  spec.seed = 501;
  const auto nl = netlist::synthesize(spec);
  const Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const ClarkStaticTiming clark(model, lev);
  const timing::DelayField field(model, 4000, 0.0, 7);
  const timing::StaticTiming mc(field, lev);
  // The analytic mean should track MC within a few percent on moderate
  // reconvergence (the error is the documented approximation).
  EXPECT_NEAR(clark.circuit_delay().mean, mc.circuit_delay().mean(),
              0.05 * mc.circuit_delay().mean());
  EXPECT_NEAR(clark.circuit_delay().sigma(), mc.circuit_delay().stddev(),
              0.5 * mc.circuit_delay().stddev() + 5.0);
}

// ---------------------------------------------------------------------------

struct ResolutionFixture {
  Netlist nl;
  Levelization lev;
  logicsim::BitSimulator sim;
  std::vector<logicsim::PatternPair> patterns;

  ResolutionFixture()
      : nl([] {
          netlist::SynthSpec spec;
          spec.n_inputs = 12;
          spec.n_outputs = 8;
          spec.n_gates = 100;
          spec.depth = 10;
          spec.seed = 502;
          return netlist::synthesize(spec);
        }()),
        lev(nl),
        sim(nl, lev) {
    stats::Rng rng(41);
    for (int i = 0; i < 8; ++i) {
      patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
    }
  }
};

TEST(Resolution, ClassesPartitionTheSuspects) {
  ResolutionFixture f;
  std::vector<ArcId> suspects;
  for (ArcId a = 0; a < f.nl.arc_count(); a += 3) suspects.push_back(a);
  const auto classes =
      diagnosis::logic_equivalence_classes(f.sim, f.lev, f.patterns, suspects);
  std::size_t total = 0;
  for (const auto& c : classes.classes) total += c.size();
  EXPECT_EQ(total, suspects.size());
  EXPECT_EQ(classes.class_of.size(), suspects.size());
  for (std::size_t s = 0; s < suspects.size(); ++s) {
    const auto& cls = classes.classes[classes.class_of[s]];
    EXPECT_NE(std::find(cls.begin(), cls.end(), suspects[s]), cls.end());
  }
  EXPECT_GE(classes.resolution(suspects.size()), 0.0);
  EXPECT_LE(classes.resolution(suspects.size()), 1.0);
  EXPECT_GE(classes.largest(), 1u);
}

TEST(Resolution, SerialArcsWithoutFanoutAreLogicallyEquivalent) {
  // A buffer chain: every arc along it reaches exactly the same outputs
  // through the same patterns - one logic class.
  Netlist nl("serial");
  const auto a = nl.add_input("a");
  const auto b1 = nl.add_gate(CellType::kBuf, "b1", {a});
  const auto b2 = nl.add_gate(CellType::kBuf, "b2", {b1});
  const auto b3 = nl.add_gate(CellType::kNot, "b3", {b2});
  nl.add_output(b3);
  nl.freeze();
  const Levelization lev(nl);
  const logicsim::BitSimulator sim(nl, lev);
  const std::vector<logicsim::PatternPair> patterns = {
      {{false}, {true}}, {{true}, {false}}};
  std::vector<ArcId> suspects;
  for (ArcId arc = 0; arc < nl.arc_count(); ++arc) suspects.push_back(arc);
  const auto classes =
      diagnosis::logic_equivalence_classes(sim, lev, patterns, suspects);
  EXPECT_EQ(classes.count(), 1u);
  EXPECT_EQ(classes.largest(), nl.arc_count());
}

TEST(Resolution, TimingClassesRefineWithTolerance) {
  ResolutionFixture f;
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(f.nl, lib);
  const timing::DelayField field(model, 120, 0.03, 9);
  const timing::DynamicTimingSimulator dyn(field, f.lev);
  // clk near the median induced delay.
  stats::SampleVector delta(field.sample_count(), 0.0);
  for (const auto& p : f.patterns) {
    const paths::TransitionGraph tg(f.sim, f.lev, p);
    delta.max_with(dyn.induced_delay(tg, dyn.simulate(tg)));
  }
  const double clk = delta.quantile(0.8);
  const diagnosis::FaultDictionary dict(dyn, f.sim, f.lev, f.patterns, clk);
  const defect::DefectSizeModel size_model(model.mean_cell_delay(), 0.5, 1.0,
                                           0.5, 3);
  std::vector<ArcId> suspects;
  for (ArcId a = 0; a < f.nl.arc_count(); a += 11) suspects.push_back(a);

  const auto coarse = diagnosis::timing_equivalence_classes(
      dict, size_model, suspects, /*tolerance=*/1.1);
  EXPECT_EQ(coarse.count(), 1u);  // everything within 1.1 of everything
  const auto fine = diagnosis::timing_equivalence_classes(
      dict, size_model, suspects, /*tolerance=*/0.0);
  const auto mid = diagnosis::timing_equivalence_classes(
      dict, size_model, suspects, /*tolerance=*/0.1);
  EXPECT_GE(fine.count(), mid.count());
  EXPECT_GE(mid.count(), coarse.count());

  // Distances are symmetric and zero on the diagonal.
  EXPECT_DOUBLE_EQ(
      diagnosis::signature_distance(dict, size_model, suspects[0], suspects[0]),
      0.0);
  EXPECT_DOUBLE_EQ(
      diagnosis::signature_distance(dict, size_model, suspects[0], suspects[1]),
      diagnosis::signature_distance(dict, size_model, suspects[1], suspects[0]));
}

TEST(Resolution, ClassRankCountsDistinctClasses) {
  diagnosis::EquivalenceClasses classes;
  classes.classes = {{10, 11}, {20}, {30}};
  classes.class_of = {0, 0, 1, 2};
  const std::vector<ArcId> suspects = {10, 11, 20, 30};
  // Ranked list: 20 (class 1), 11 (class 0), 30 (class 2).
  const std::vector<ArcId> ranked = {20, 11, 30};
  EXPECT_EQ(diagnosis::class_rank(classes, suspects, ranked, 20), 0);
  EXPECT_EQ(diagnosis::class_rank(classes, suspects, ranked, 10), 1);
  EXPECT_EQ(diagnosis::class_rank(classes, suspects, ranked, 11), 1);
  EXPECT_EQ(diagnosis::class_rank(classes, suspects, ranked, 30), 2);
  EXPECT_EQ(diagnosis::class_rank(classes, suspects, ranked, 99), -1);
}

}  // namespace
}  // namespace sddd
