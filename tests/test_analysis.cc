// Tests for the static-analysis framework: the Report container, the three
// rule packs (netlist / statistical model / dictionary), the shared
// lint_netlist preflight, determinism of the parallel rule runner, and the
// SDDD_CHECK runtime-contract layer shared with the diagnosis pipeline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/check.h"
#include "analysis/dictionary_rules.h"
#include "analysis/model_rules.h"
#include "analysis/netlist_rules.h"
#include "diagnosis/error_fn.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "runtime/parallel_for.h"

namespace sddd::analysis {
namespace {

Report run_on_netlist(const netlist::Netlist& nl) {
  AnalysisInput in;
  in.netlist = &nl;
  return Analyzer::with_default_rules().run(in);
}

Report run_on_correlation(const CorrelationSubject& subject) {
  AnalysisInput in;
  in.correlation = &subject;
  return Analyzer::with_default_rules().run(in);
}

Report run_on_dictionary(const DictionarySubject& subject) {
  AnalysisInput in;
  in.dictionary = &subject;
  return Analyzer::with_default_rules().run(in);
}

TEST(Report, CountsAndEmitters) {
  Report r;
  EXPECT_TRUE(r.empty());
  r.add("NET001", Severity::kError, "gate g", "broken \"badly\"");
  r.add("MOD002", Severity::kWarning, "arc 3", "flat");
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);
  EXPECT_TRUE(r.has_rule("NET001"));
  EXPECT_FALSE(r.has_rule("NET002"));

  const std::string text = r.to_text();
  EXPECT_NE(text.find("error NET001 gate g"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"rule_id\": \"NET001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("broken \\\"badly\\\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(NetlistRules, CleanCircuitHasNoFindings) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
o = AND(a, b)
)");
  EXPECT_TRUE(run_on_netlist(nl).empty());
}

// Acceptance case: a floating net must produce NET003 at error severity,
// observable through the --json emitter.
TEST(NetlistRules, FloatingNetIsError) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
o = AND(a, b)
dead = OR(a, b)
)");
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleFloatingNet));
  EXPECT_GE(report.error_count(), 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule_id\": \"NET003\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("dead"), std::string::npos);
}

TEST(NetlistRules, UnusedInputIsOnlyWarning) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(unused)
OUTPUT(o)
o = NOT(a)
)");
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleFloatingNet));
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(NetlistRules, CombinationalCycleIsError) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
u = AND(a, w)
w = OR(u, b)
o = NAND(u, w)
)");
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleCombinationalCycle));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(NetlistRules, DffBreaksCycle) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
q = DFF(u)
u = AND(a, q)
o = NOT(u)
)");
  EXPECT_FALSE(run_on_netlist(nl).has_rule(kRuleCombinationalCycle));
}

TEST(NetlistRules, DuplicatePrimaryOutputIsError) {
  netlist::Netlist nl("dup");
  const auto a = nl.add_input("a");
  const auto g = nl.add_gate(netlist::CellType::kNot, "g", {a});
  nl.add_output(g);
  nl.add_output(g);
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleMultiplyDriven));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(NetlistRules, UndrivenFaninIsError) {
  netlist::Netlist nl("undriven");
  const auto a = nl.add_input("a");
  const auto g =
      nl.add_gate(netlist::CellType::kAnd, "g", {a, netlist::GateId{99}});
  nl.add_output(g);
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleUndrivenNet));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(NetlistRules, SelfFeedbackDffIsBrokenScanChain) {
  netlist::Netlist nl("selfloop");
  const auto a = nl.add_input("a");
  // A DFF feeding itself (gate id 1 = its own fanin) holds no scan path.
  const auto q = nl.add_gate(netlist::CellType::kDff, "q", {1});
  ASSERT_EQ(q, 1u);
  const auto g = nl.add_gate(netlist::CellType::kOr, "g", {a, q});
  nl.add_output(g);
  const Report report = run_on_netlist(nl);
  EXPECT_TRUE(report.has_rule(kRuleScanChain));
  EXPECT_GE(report.error_count(), 1u);
}

// Acceptance case: a non-PSD correlation matrix must produce MOD004 at
// error severity via the Cholesky probe.
TEST(ModelRules, NonPsdCorrelationIsError) {
  // Pairwise correlations of +/-0.9 with inconsistent signs: eigenvalue
  // 1 - 0.9 - 0.9 < 0, so no Cholesky factor exists.
  CorrelationSubject subject;
  subject.dim = 3;
  subject.matrix = {1.0, 0.9, 0.9,   //
                    0.9, 1.0, -0.9,  //
                    0.9, -0.9, 1.0};
  const Report report = run_on_correlation(subject);
  EXPECT_TRUE(report.has_rule(kRuleCorrelationNotPsd));
  EXPECT_GE(report.error_count(), 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule_id\": \"MOD004\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
}

TEST(ModelRules, PsdCorrelationIsClean) {
  CorrelationSubject subject;
  subject.dim = 3;
  subject.matrix = {1.0, 0.3, 0.3,  //
                    0.3, 1.0, 0.3,  //
                    0.3, 0.3, 1.0};
  EXPECT_TRUE(run_on_correlation(subject).empty());
}

TEST(ModelRules, AsymmetryAndShapeAreErrors) {
  CorrelationSubject asym;
  asym.dim = 2;
  asym.matrix = {1.0, 0.5,  //
                 0.2, 1.0};
  EXPECT_TRUE(run_on_correlation(asym).has_rule(kRuleCorrelationShape));

  CorrelationSubject ragged;
  ragged.dim = 3;
  ragged.matrix = {1.0, 0.0, 0.0, 1.0};  // 4 entries, dim^2 = 9
  const Report report = run_on_correlation(ragged);
  EXPECT_TRUE(report.has_rule(kRuleCorrelationShape));
  EXPECT_GE(report.error_count(), 1u);
}

DictionarySubject small_dictionary() {
  DictionarySubject subject;
  subject.n_outputs = 2;
  subject.n_patterns = 2;
  subject.m_crt = {{0.1, 0.2}, {0.3, 0.4}};
  DictionarySubject::Signature sig;
  sig.label = "arc 7";
  sig.s_crt = {{0.5, 0.0}, {0.0, 0.25}};
  subject.signatures.push_back(sig);
  return subject;
}

TEST(DictionaryRules, CleanDictionaryHasNoFindings) {
  EXPECT_TRUE(run_on_dictionary(small_dictionary()).empty());
}

// Acceptance case: an out-of-range S_crt entry must produce DICT002 at
// error severity, observable through the --json emitter.
TEST(DictionaryRules, OutOfRangeSignatureIsError) {
  auto subject = small_dictionary();
  subject.signatures[0].s_crt[1][0] = 1.5;
  const Report report = run_on_dictionary(subject);
  EXPECT_TRUE(report.has_rule(kRuleSignatureRange));
  EXPECT_GE(report.error_count(), 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"rule_id\": \"DICT002\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("arc 7"), std::string::npos);
}

TEST(DictionaryRules, OutOfRangeProbabilityIsError) {
  auto subject = small_dictionary();
  subject.m_crt[0][1] = -0.25;
  const Report report = run_on_dictionary(subject);
  EXPECT_TRUE(report.has_rule(kRuleProbabilityRange));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(DictionaryRules, DimensionMismatchIsError) {
  auto subject = small_dictionary();
  subject.n_patterns = 3;  // declared |TP| no longer matches the rows
  const Report report = run_on_dictionary(subject);
  EXPECT_TRUE(report.has_rule(kRuleDictionaryShape));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(DictionaryRules, ZeroAndDuplicateSignaturesWarn) {
  auto subject = small_dictionary();
  DictionarySubject::Signature zero;
  zero.label = "arc 8";
  zero.s_crt = {{0.0, 0.0}, {0.0, 0.0}};
  subject.signatures.push_back(zero);
  DictionarySubject::Signature dup = subject.signatures[0];
  dup.label = "arc 9";
  subject.signatures.push_back(dup);
  const Report report = run_on_dictionary(subject);
  EXPECT_TRUE(report.has_rule(kRuleZeroSignature));
  EXPECT_TRUE(report.has_rule(kRuleDuplicateSignature));
  // Both are diagnosability caps, not data corruption: warnings only.
  EXPECT_EQ(report.error_count(), 0u);
}

// Golden findings for the composite pathological netlist: pins the NET
// pack's exact output (order, locations, severities - including the
// self-cycle double-report quirk) across the pass-framework refactor, so
// any facts-layer change that alters a finding is caught here.
TEST(NetlistRules, CompositeGoldenFindingsAreStable) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(unused)
OUTPUT(o)
OUTPUT(o)
u = AND(a, w)
w = OR(u, b)
o = NAND(u, w)
dead = XOR(a, b)
k0 = AND(c0, c0)
c0 = AND(c0, c0)
q = DFF(q)
z = OR(q, k0)
o2 = NOT(z)
OUTPUT(o2)
)");
  const Report report = run_on_netlist(nl);
  EXPECT_EQ(report.error_count(), 6u);
  EXPECT_EQ(report.warning_count(), 3u);
  const struct {
    const char* severity;
    const char* rule;
    const char* location;
  } expected[] = {
      {"error", "NET001", "gate w"},       // cycle u <-> w
      {"error", "NET001", "gate c0"},      // self-cycle, via k0's fanin
      {"error", "NET001", "gate c0"},      // self-cycle, via its own fanin
      {"warning", "NET003", "gate unused"},
      {"error", "NET003", "gate dead"},
      {"error", "NET004", "gate o"},       // duplicate PO slot
      {"warning", "NET005", "gate c0"},
      {"warning", "NET005", "gate k0"},
      {"error", "NET007", "gate q"},       // self-feedback DFF
  };
  const std::string text = report.to_text();
  std::size_t pos = 0;
  for (const auto& e : expected) {
    const std::string line =
        std::string(e.severity) + " " + e.rule + " " + e.location + ":";
    const std::size_t at = text.find(line, pos);
    ASSERT_NE(at, std::string::npos) << "missing/misordered: " << line;
    pos = at + line.size();
  }
}

TEST(Analyzer, ReportIsIdenticalAcrossThreadCounts) {
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(o)
u = AND(a, w)
w = OR(u, b)
o = NAND(u, w)
dead = XOR(a, b)
)");
  const std::size_t before = runtime::thread_count();
  runtime::set_thread_count(1);
  const std::string serial = run_on_netlist(nl).to_json();
  runtime::set_thread_count(4);
  const std::string parallel = run_on_netlist(nl).to_json();
  runtime::set_thread_count(before);
  EXPECT_EQ(serial, parallel);
}

TEST(LintNetlist, RunsModelRulesOnScanCore) {
  // Sequential circuit: the delay model is only defined on the full-scan
  // combinational core, so a clean s27-style loop must lint clean instead
  // of throwing from StatisticalCellLibrary.
  const auto nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
q = DFF(u)
u = AND(a, q)
o = NOT(u)
)");
  ASSERT_TRUE(nl.frozen());
  const Report report =
      lint_netlist(Analyzer::with_default_rules(), nl);
  EXPECT_EQ(report.error_count(), 0u);
}

class CheckModeGuard {
 public:
  CheckModeGuard() : before_(check_mode()) {}
  ~CheckModeGuard() { set_check_mode(before_); }

 private:
  CheckMode before_;
};

TEST(SdddCheck, OffModeIgnoresViolations) {
  const CheckModeGuard guard;
  set_check_mode(CheckMode::kOff);
  const std::vector<double> bad = {0.5, 1.5};
  EXPECT_NO_THROW(check_probability_column(bad, "test"));
  EXPECT_NO_THROW(check_signature_column(bad, "test"));
}

TEST(SdddCheck, ThrowModeNamesRuleId) {
  const CheckModeGuard guard;
  set_check_mode(CheckMode::kThrow);
  const std::vector<double> bad_prob = {0.5, 1.5};
  try {
    check_probability_column(bad_prob, "unit test");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.rule_id(), "DICT001");
    EXPECT_NE(std::string(e.what()).find("DICT001"), std::string::npos);
  }

  const std::vector<double> bad_sig = {-1.5};
  try {
    check_signature_column(bad_sig, "unit test");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.rule_id(), "DICT002");
  }
}

TEST(SdddCheck, MacroGuardsArbitraryConditions) {
  const CheckModeGuard guard;
  set_check_mode(CheckMode::kThrow);
  EXPECT_NO_THROW(SDDD_CHECK(2 + 2 == 4, "NET001", "arithmetic"));
  EXPECT_THROW(SDDD_CHECK(false, "MOD001", "forced"), ContractViolation);
  set_check_mode(CheckMode::kOff);
  EXPECT_NO_THROW(SDDD_CHECK(false, "MOD001", "ignored when off"));
}

// Acceptance case: in throw mode, an out-of-range signature is rejected
// during diagnosis scoring (phi) with a message naming the rule id.
TEST(SdddCheck, PhiRejectsOutOfRangeSignature) {
  const CheckModeGuard guard;
  set_check_mode(CheckMode::kThrow);
  const std::vector<double> s = {0.25, 1.75};  // 1.75 violates DICT002
  const std::vector<bool> b = {true, false};
  try {
    diagnosis::phi(s, b);
    FAIL() << "expected ContractViolation from phi()";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("DICT00"), std::string::npos);
  }

  set_check_mode(CheckMode::kOff);
  EXPECT_NO_THROW(diagnosis::phi(s, b));  // contracts off: legacy behavior
}

}  // namespace
}  // namespace sddd::analysis
