// bench_dictionary - Micro-benchmarks (google-benchmark) for the cost of
// building and querying the probabilistic fault dictionary: the paper's
// feasibility question (3) ("Assuming that computing and storing logic
// information in fault dictionary is not an issue, how well can we do?")
// has a flip side - what does the *probabilistic* dictionary cost?
//
//   BM_BaselineSimulation  - one defect-free dynamic simulation (an M_crt
//                            column) vs circuit size and MC depth;
//   BM_SuspectColumn       - one incremental E_crt column (per-suspect,
//                            per-pattern cost during diagnosis);
//   BM_TransitionGraph     - sensitization analysis per pattern;
//   BM_PodemSensitize      - one path sensitization attempt;
//   BM_InstanceSim         - one chip observation (a behavior-matrix
//                            column);
//   BM_DictionaryBuild     - a full FaultDictionary over a pattern set:
//                            the parallel hot loop (pattern slices fan out
//                            over the runtime thread pool; compare
//                            --threads 1 vs. --threads N);
//   BM_SuspectSweep        - E columns for many suspects against one
//                            shared slice (the Diagnoser's parallel inner
//                            loop).
//
// Accepts `--threads N` (or SDDD_THREADS) ahead of the usual
// google-benchmark flags; results are identical for any thread count.
#include <benchmark/benchmark.h>

#include "atpg/pdf_atpg.h"
#include "diagnosis/dictionary.h"
#include "logicsim/bitsim.h"
#include "netlist/iscas_catalog.h"
#include "obs/obs.h"
#include "netlist/levelize.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace {

using namespace sddd;

struct Fixture {
  netlist::Netlist nl;
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField field;
  logicsim::BitSimulator sim;
  timing::DynamicTimingSimulator dyn;
  logicsim::PatternPair pattern;
  paths::TransitionGraph tg;

  Fixture(const char* name, double scale, std::size_t samples)
      : nl(netlist::make_standin(*netlist::find_profile(name), scale, 7)),
        lev(nl),
        model(nl, lib),
        field(model, samples, 0.03, 11),
        sim(nl, lev),
        dyn(field, lev),
        pattern(make_pattern()),
        tg(sim, lev, pattern) {}

  logicsim::PatternPair make_pattern() {
    stats::Rng rng(13);
    logicsim::PatternPair p;
    p.v1.resize(nl.inputs().size());
    p.v2.resize(nl.inputs().size());
    for (std::size_t i = 0; i < p.v1.size(); ++i) {
      p.v1[i] = rng.bernoulli(0.5);
      p.v2[i] = !p.v1[i];  // maximize switching: worst case for the sim
    }
    return p;
  }
};

Fixture& fixture_for(const benchmark::State& state) {
  // One fixture per (circuit, samples) combination, constructed lazily.
  static Fixture small("s1196", 1.0, 200);
  static Fixture small_deep("s1196", 1.0, 800);
  static Fixture large("s5378", 1.0, 200);
  switch (state.range(0)) {
    case 0:
      return small;
    case 1:
      return small_deep;
    default:
      return large;
  }
}

const char* fixture_name(int idx) {
  switch (idx) {
    case 0:
      return "s1196/200";
    case 1:
      return "s1196/800";
    default:
      return "s5378/200";
  }
}

void BM_BaselineSimulation(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dyn.simulate(f.tg));
  }
  state.SetLabel(fixture_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BaselineSimulation)->Arg(0)->Arg(1)->Arg(2);

void BM_SuspectColumn(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  const auto baseline = f.dyn.simulate(f.tg);
  // Pick an active arc mid-circuit as the suspect.
  netlist::ArcId suspect = 0;
  for (netlist::ArcId a = f.nl.arc_count() / 2; a < f.nl.arc_count(); ++a) {
    if (f.tg.is_active(a)) {
      suspect = a;
      break;
    }
  }
  timing::InjectedDefect defect;
  defect.arc = suspect;
  defect.extra.assign(f.field.sample_count(), 80.0);
  const double clk = f.dyn.induced_delay(f.tg, baseline).quantile(0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.dyn.error_vector_with_defect(f.tg, baseline, defect, clk));
  }
  state.SetLabel(fixture_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_SuspectColumn)->Arg(0)->Arg(1)->Arg(2);

void BM_TransitionGraph(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        paths::TransitionGraph(f.sim, f.lev, f.pattern));
  }
  state.SetLabel(fixture_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TransitionGraph)->Arg(0)->Arg(2);

void BM_PodemSensitize(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  const atpg::PathDelayAtpg atpg(f.nl, f.lev);
  const auto paths_through = paths::k_heaviest_paths_through(
      f.nl, f.lev, f.model.means(), f.nl.arc_count() / 2, 1);
  if (paths_through.empty()) {
    state.SkipWithError("no path through the chosen site");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        atpg.sensitize(paths_through[0], true, false, 300));
  }
  state.SetLabel(fixture_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_PodemSensitize)->Arg(0)->Arg(2);

void BM_InstanceSim(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.dyn.simulate_instance(f.tg, 7, std::nullopt));
  }
  state.SetLabel(fixture_name(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_InstanceSim)->Arg(0)->Arg(2);

std::vector<logicsim::PatternPair> random_patterns(const Fixture& f,
                                                   std::size_t count) {
  stats::Rng rng(29);
  std::vector<logicsim::PatternPair> patterns(count);
  for (auto& p : patterns) {
    p.v1.resize(f.nl.inputs().size());
    p.v2.resize(f.nl.inputs().size());
    for (std::size_t i = 0; i < p.v1.size(); ++i) {
      p.v1[i] = rng.bernoulli(0.5);
      p.v2[i] = rng.bernoulli(0.5);
    }
  }
  return patterns;
}

void BM_DictionaryBuild(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  const auto patterns = random_patterns(f, 32);
  const double clk = f.dyn.induced_delay(f.tg, f.dyn.simulate(f.tg)).quantile(0.8);
  for (auto _ : state) {
    const diagnosis::FaultDictionary dict(f.dyn, f.sim, f.lev, patterns, clk);
    benchmark::DoNotOptimize(dict.pattern_count());
  }
  state.SetLabel(std::string(fixture_name(static_cast<int>(state.range(0)))) +
                 "/t" + std::to_string(runtime::thread_count()));
}
BENCHMARK(BM_DictionaryBuild)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_SuspectSweep(benchmark::State& state) {
  Fixture& f = fixture_for(state);
  const auto baseline = f.dyn.simulate(f.tg);
  std::vector<netlist::ArcId> suspects;
  for (netlist::ArcId a = 0; a < f.nl.arc_count() && suspects.size() < 64;
       ++a) {
    if (f.tg.is_active(a)) suspects.push_back(a);
  }
  timing::InjectedDefect defect;
  defect.extra.assign(f.field.sample_count(), 80.0);
  const double clk = f.dyn.induced_delay(f.tg, baseline).quantile(0.8);
  for (auto _ : state) {
    std::vector<double> first(suspects.size());
    runtime::parallel_for(suspects.size(), [&](std::size_t s) {
      timing::InjectedDefect d = defect;
      d.arc = suspects[s];
      first[s] = f.dyn.error_vector_with_defect(f.tg, baseline, d, clk)[0];
    });
    benchmark::DoNotOptimize(first.data());
  }
  state.SetLabel(std::string(fixture_name(static_cast<int>(state.range(0)))) +
                 "/t" + std::to_string(runtime::thread_count()));
}
BENCHMARK(BM_SuspectSweep)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sddd::obs::configure_observability_from_args(&argc, argv);
  sddd::runtime::configure_threads_from_args(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
