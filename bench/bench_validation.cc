// bench_validation - Validates the two modeling approximations the
// reproduction rests on:
//
//   V1  Transition-mode dynamic timing vs event-driven reference: per
//       (pattern, chip), compare the min/max arrival at every toggling
//       output against the exact transport-delay settle time.  Reports
//       the glitch-free fraction (where the approximation is exact by
//       construction), and the error distribution where hazards occur.
//
//   V2  Monte-Carlo SSTA vs Clark's analytic moment matching: mean/sigma
//       of Delta(C) across the benchmark stand-ins.  Clark ignores
//       reconvergent correlation - the gap measured here is the reason
//       the paper's framework (and this library's dictionary) uses
//       Monte-Carlo semantics.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "logicsim/event_sim.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "paths/transition_graph.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/clark_ssta.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"
#include "obs/obs.h"
#include "runtime/parallel_for.h"
#include "timing/ssta.h"

using namespace sddd;
using logicsim::PatternPair;
using netlist::GateId;

int main(int argc, char** argv) {
  obs::configure_observability_from_args(&argc, argv);
  runtime::configure_threads_from_args(&argc, argv);
  std::printf("== Modeling validation ==\n\n");

  // ----- V1: transition-mode vs event-driven -----
  std::printf("V1: transition-mode arrivals vs event-driven settle times\n");
  std::printf("%-10s %9s %12s %12s %12s %12s\n", "circuit", "outputs",
              "glitch-free", "exact(<1e-9)", "mean |err|", "max |err|");
  for (const char* name : {"s1196", "s1238", "s1488"}) {
    const auto nl =
        netlist::make_standin(*netlist::find_profile(name), 0.5, 2003);
    const netlist::Levelization lev(nl);
    const timing::StatisticalCellLibrary lib;
    const timing::ArcDelayModel model(nl, lib);
    const timing::DelayField field(model, 4, 0.03, 17);
    const timing::DynamicTimingSimulator dyn(field, lev);
    const logicsim::TimedEventSimulator timed(nl, lev);
    const logicsim::BitSimulator logic(nl, lev);
    std::vector<double> delays(nl.arc_count());
    for (netlist::ArcId a = 0; a < nl.arc_count(); ++a) {
      delays[a] = field.delay(a, 0);
    }

    stats::Rng rng(23);
    std::size_t outputs_compared = 0;
    std::size_t glitch_free = 0;
    std::size_t exact = 0;
    double err_sum = 0.0;
    double err_max = 0.0;
    for (int t = 0; t < 40; ++t) {
      PatternPair pp;
      pp.v1.resize(nl.inputs().size());
      pp.v2.resize(nl.inputs().size());
      for (std::size_t i = 0; i < pp.v1.size(); ++i) {
        pp.v1[i] = rng.bernoulli(0.5);
        pp.v2[i] = rng.bernoulli(0.5);
      }
      const paths::TransitionGraph tg(logic, lev, pp);
      const auto arr = dyn.simulate_instance(tg, 0, std::nullopt);
      const auto r = timed.simulate(pp, delays);
      for (const GateId o : nl.outputs()) {
        if (!tg.toggles(o)) continue;
        ++outputs_compared;
        const double err = std::abs(arr[o] - r.settle_time[o]);
        if (r.event_count[o] <= 1) ++glitch_free;
        if (err < 1e-9) ++exact;
        err_sum += err;
        err_max = std::max(err_max, err);
      }
    }
    std::printf("%-10s %9zu %11.1f%% %11.1f%% %11.2f %12.2f\n", name,
                outputs_compared,
                100.0 * glitch_free / std::max<std::size_t>(outputs_compared, 1),
                100.0 * exact / std::max<std::size_t>(outputs_compared, 1),
                err_sum / std::max<std::size_t>(outputs_compared, 1), err_max);
  }
  std::printf(
      "=> where no hazard occurs the transition-mode arrival is exact; the\n"
      "   residual error is confined to glitching outputs (future work #1\n"
      "   in the paper: more accurate dynamic simulation).\n\n");

  // ----- V2: Monte-Carlo vs Clark SSTA -----
  std::printf("V2: Monte-Carlo SSTA vs Clark analytic moment matching\n");
  std::printf("%-10s | %10s %10s | %10s %10s | %9s\n", "circuit", "MC mean",
              "MC sigma", "Clark mean", "Clark sd", "mean err");
  for (const char* name : {"s1196", "s1238", "s1423", "s1488"}) {
    const auto nl =
        netlist::make_standin(*netlist::find_profile(name), 0.5, 2003);
    const netlist::Levelization lev(nl);
    const timing::StatisticalCellLibrary lib;
    const timing::ArcDelayModel model(nl, lib);
    const timing::DelayField field(model, 2000, 0.0, 29);
    const timing::StaticTiming mc(field, lev);
    const timing::ClarkStaticTiming clark(model, lev);
    const double mc_mean = mc.circuit_delay().mean();
    const double clark_mean = clark.circuit_delay().mean;
    std::printf("%-10s | %10.1f %10.1f | %10.1f %10.1f | %8.2f%%\n", name,
                mc_mean, mc.circuit_delay().stddev(), clark_mean,
                clark.circuit_delay().sigma(),
                100.0 * (clark_mean - mc_mean) / mc_mean);
  }
  std::printf(
      "=> Clark's independence approximation tracks the mean within a few\n"
      "   percent but distorts the spread under reconvergence; the\n"
      "   dictionary therefore uses the Monte-Carlo engine.\n");
  return 0;
}
