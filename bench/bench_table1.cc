// bench_table1 - Regenerates the paper's Table I ("Diagnosis Accuracy on
// Benchmark Examples"): success rate of Alg_sim Methods I/II (plus the
// text-only Method III) and Alg_rev at the paper's per-circuit K values,
// over N = 20 statistically injected failing chips per circuit.
//
// Circuits are ISCAS-89-class stand-ins (see DESIGN.md substitution table);
// drop real `.bench` files into a directory and pass --bench-dir to use
// them instead.
//
// Usage:
//   bench_table1 [--scale S] [--samples N] [--chips N] [--seed N]
//                [--threads N] [--bench-dir DIR] [--csv FILE]
//                [--json FILE] [--git-sha SHA] [--lint] [circuit ...]
//
// --lint runs the static-analysis preflight (netlist + statistical-model
// rule packs) on every circuit and aborts on error-severity findings.
// --git-sha (or the SDDD_GIT_SHA environment variable) stamps the JSON
// record so the perf trajectory is attributable across PRs.
//
// Defaults favour a laptop-scale run (scale 0.35, 200 Monte-Carlo samples,
// ~2-4 minutes); --scale 1.0 --samples 400 reproduces the full-size setup.
// --threads 0 uses every hardware thread; results (table, CSV) are
// bit-identical for any thread count.  Wall-clock timings are written to
// BENCH_table1.json (override with --json FILE, disable with --json '')
// so the perf trajectory is tracked PR over PR.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "eval/table1.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "runtime/parallel_for.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_table1 [--scale S] [--samples N] [--chips N]\n"
               "                    [--seed N] [--threads N] [--bench-dir DIR]\n"
               "                    [--csv FILE] [--json FILE] [circuit ...]\n"
               "%s",
               sddd::obs::observability_usage());
}

}  // namespace

int main(int argc, char** argv) {
  sddd::obs::configure_observability_from_args(&argc, argv);
  sddd::eval::Table1Config config;
  config.scale = 0.35;
  config.base.mc_samples = 200;
  config.base.n_chips = 20;
  std::string csv_path;
  std::string json_path = "BENCH_table1.json";
  const char* sha_env = std::getenv("SDDD_GIT_SHA");
  std::string git_sha = sha_env != nullptr ? sha_env : "unknown";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      config.scale = std::atof(next());
    } else if (arg == "--samples") {
      config.base.mc_samples = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--chips") {
      config.base.n_chips = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      config.base.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--bench-dir") {
      config.bench_dir = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--git-sha") {
      git_sha = next();
    } else if (arg == "--lint") {
      config.lint_preflight = true;
    } else if (arg == "--threads") {
      sddd::runtime::set_thread_count(
          static_cast<std::size_t>(std::atoi(next())));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      config.circuits.push_back(arg);
    }
  }

  // One id per invocation: stamped into the JSON artifact, the ledger
  // record and the flight recorder, so a stale BENCH_table1.json can be
  // told apart from a fresh one.
  const std::string run_id =
      sddd::obs::new_invocation_run_id("bench_table1", git_sha);
  sddd::obs::Recorder::instance().set_run_id(run_id);

  SDDD_LOG_INFO("== Table I reproduction ==");
  SDDD_LOG_INFO("scale=%.2f samples=%zu chips=%zu seed=%llu threads=%zu",
                config.scale, config.base.mc_samples, config.base.n_chips,
                static_cast<unsigned long long>(config.base.seed),
                sddd::runtime::thread_count());

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = sddd::eval::run_table1(config);
  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%s\n", result.to_string().c_str());

  std::printf("per-circuit experiment statistics:\n");
  for (const auto& exp : result.experiments) {
    std::printf(
        "  %-8s clk=%8.1f tu  diagnosable=%zu/%zu  avg |S|=%5.1f  "
        "avg injection attempts=%5.1f  wall=%6.2fs\n",
        exp.circuit_name.c_str(), exp.clk, exp.diagnosable_trials(),
        exp.trials.size(), exp.avg_suspects(), exp.avg_injection_attempts(),
        exp.wall_seconds);
  }
  std::printf("total wall time: %.2fs at %zu thread(s)\n", total_seconds,
              sddd::runtime::thread_count());

  if (!json_path.empty() &&
      sddd::eval::write_table1_json_file(json_path, config, result,
                                         total_seconds, git_sha, run_id)) {
    SDDD_LOG_INFO("timings written to %s", json_path.c_str());
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << result.to_csv();
    SDDD_LOG_INFO("csv written to %s", csv_path.c_str());
  }

  if (!sddd::obs::ledger_out_path().empty()) {
    sddd::obs::LedgerRecord rec;
    rec.run_id = run_id;
    rec.tool = "bench_table1";
    rec.git_sha = git_sha;
    rec.seed = config.base.seed;
    rec.threads = sddd::runtime::thread_count();
    rec.mc_samples = config.base.mc_samples;
    rec.n_chips = config.base.n_chips;
    rec.wall_seconds = total_seconds;
    for (const auto& exp : result.experiments) {
      if (!rec.circuit.empty()) rec.circuit.push_back(',');
      rec.circuit += exp.circuit_name;
      rec.phases["setup_s"] += exp.phases.setup_seconds;
      rec.phases["calibration_s"] += exp.phases.calibration_seconds;
      rec.phases["trials_s"] += exp.phases.trials_seconds;
      rec.phases["dict_build_cpu_s"] += exp.phases.dict_build_cpu_seconds;
      rec.phases["score_cpu_s"] += exp.phases.score_cpu_seconds;
    }
    rec.counters =
        sddd::obs::MetricsRegistry::instance().snapshot().counters;
    rec.peak_rss_kb = sddd::obs::read_peak_rss_kb();
    rec.result_path = json_path;
    rec.unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (sddd::obs::append_ledger_record(sddd::obs::ledger_out_path(), rec)) {
      SDDD_LOG_INFO("ledger: appended run %s to %s", rec.run_id.c_str(),
                    sddd::obs::ledger_out_path().c_str());
    }
  }
  return 0;
}
