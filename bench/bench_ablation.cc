// bench_ablation - Design-space ablations around the Table I experiment,
// quantifying the design choices DESIGN.md calls out:
//
//   A1  defect-size sweep      - accuracy vs mean defect magnitude (the
//       paper's 50-100% of a cell delay vs smaller/larger defects);
//   A2  Monte-Carlo depth      - accuracy vs dictionary sample count (the
//       paper's feasibility question (3): dictionary fidelity is the cost);
//   A3  pattern budget         - accuracy vs |TP| (Section G: diagnosis
//       needs "good" patterns; more patterns = more constraints);
//   A4  matching target        - E_crt vs the paper-literal S_crt matching
//       (identical when M_crt = 0; S degrades once baseline failures
//       appear, and Method III's probability score shows the Section I
//       "too restrictive" collapse);
//   A5  multi-defect chips     - relaxing the single-defect assumption
//       (future work #3);
//   A7  logic baseline         - traditional gross-delay dictionary vs the
//       statistical methods (Sections A-C);
//   A6  automatic K            - the fixed-K ladder the auto-K heuristics
//       adapt against (future work #2).
//
// One mid-size circuit (s1238-class stand-in) keeps the sweep affordable.
// Usage: bench_ablation [--chips N] [--scale S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/experiment.h"
#include "netlist/iscas_catalog.h"
#include "obs/obs.h"
#include "runtime/parallel_for.h"

using sddd::diagnosis::Method;
using sddd::eval::ExperimentConfig;
using sddd::eval::run_diagnosis_experiment;

namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.mc_samples = 200;
  config.n_chips = 16;
  config.seed = 2003;
  return config;
}

void print_header(const char* sweep) {
  std::printf("%-24s %6s | %7s %7s %8s %7s | %5s\n", sweep, "K",
              "sim-I", "sim-II", "sim-III", "rev", "|S|");
}

void print_row(const std::string& label, int k,
               const sddd::eval::ExperimentResult& r) {
  std::printf("%-24s %6d | %6.0f%% %6.0f%% %7.0f%% %6.0f%% | %5.0f\n",
              label.c_str(), k, 100 * r.success_rate(Method::kSimI, k),
              100 * r.success_rate(Method::kSimII, k),
              100 * r.success_rate(Method::kSimIII, k),
              100 * r.success_rate(Method::kRev, k), r.avg_suspects());
}

}  // namespace

int main(int argc, char** argv) {
  sddd::obs::configure_observability_from_args(&argc, argv);
  sddd::runtime::configure_threads_from_args(&argc, argv);
  double scale = 0.5;
  std::size_t chips = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chips" && i + 1 < argc) chips = std::atoi(argv[++i]);
    if (arg == "--scale" && i + 1 < argc) scale = std::atof(argv[++i]);
  }

  const auto* profile = sddd::netlist::find_profile("s1238");
  const auto nl = sddd::netlist::make_standin(*profile, scale, 2003);
  std::printf("== Ablation studies on %s-class stand-in (scale %.2f) ==\n\n",
              profile->name.data(), scale);
  const int k_mid = 5;

  // --- A1: defect magnitude ---
  std::printf("A1: accuracy vs defect-size mean (fraction of a cell delay)\n");
  print_header("mean range");
  for (const auto& [lo, hi] : {std::pair{0.25, 0.5}, std::pair{0.5, 1.0},
                              std::pair{1.0, 2.0}, std::pair{2.0, 4.0}}) {
    auto config = base_config();
    config.n_chips = chips;
    config.defect_mean_lo = lo;
    config.defect_mean_hi = hi;
    const auto r = run_diagnosis_experiment(nl, config);
    char label[64];
    std::snprintf(label, sizeof(label), "[%.2f, %.2f] x cell", lo, hi);
    print_row(label, k_mid, r);
  }
  std::printf("=> larger defects are easier to localize; the paper's\n"
              "   0.5-1.0 regime sits on the hard edge.\n\n");

  // --- A2: dictionary Monte-Carlo depth ---
  std::printf("A2: accuracy vs dictionary Monte-Carlo samples\n");
  print_header("samples");
  for (const std::size_t samples : {50u, 100u, 200u, 400u}) {
    auto config = base_config();
    config.n_chips = chips;
    config.mc_samples = samples;
    config.instance_samples = 512;  // same chip population in every row
    const auto r = run_diagnosis_experiment(nl, config);
    print_row(std::to_string(samples), k_mid, r);
  }
  std::printf(
      "=> the chip population is pinned (instance_samples), so rows differ\n"
      "   only in dictionary fidelity.  At this circuit size accuracy\n"
      "   saturates quickly; wide circuits keep gaining (s5378-class: K=7\n"
      "   Alg_rev 44%% -> 59%% from 200 -> 500 samples), because phi is a\n"
      "   product over |O| noisy probabilities (feasibility question (3)).\n\n");

  // --- A3: pattern budget ---
  std::printf("A3: accuracy vs pattern budget |TP|\n");
  print_header("max patterns");
  for (const std::size_t tp : {4u, 8u, 12u, 20u}) {
    auto config = base_config();
    config.n_chips = chips;
    config.pattern_config.max_patterns = tp;
    const auto r = run_diagnosis_experiment(nl, config);
    print_row(std::to_string(tp), k_mid, r);
  }
  std::printf("=> each extra pattern adds constraints on the suspect set\n"
              "   (Section G: diagnosis needs good patterns).\n\n");

  // --- A4: matching target + Method III collapse ---
  std::printf("A4: matching E_crt (total) vs paper-literal S_crt = E - M\n");
  print_header("matching");
  {
    auto config = base_config();
    config.n_chips = chips;
    const auto r = run_diagnosis_experiment(nl, config);
    print_row("E_crt (default)", k_mid, r);
  }
  {
    auto config = base_config();
    config.n_chips = chips;
    config.match_on_signature = true;
    const auto r = run_diagnosis_experiment(nl, config);
    print_row("S_crt (paper-literal)", k_mid, r);
  }
  std::printf(
      "=> identical when M_crt = 0 (the paper's stated regime); once slow\n"
      "   chips produce baseline failures, S-matching zeroes phi on those\n"
      "   cells for every suspect and resolution drops.  (Method III's\n"
      "   probability score collapses to exactly 0 there - the paper's\n"
      "   \"too restrictive\" - but our log-domain ranking keys keep its\n"
      "   ordering usable; see EXPERIMENTS.md.)\n\n");

  // --- A5: relaxing the single-defect assumption (future work #3) ---
  std::printf("A5: multi-defect chips diagnosed under the single-defect "
              "assumption\n");
  print_header("defects per chip");
  for (const std::size_t nd : {1u, 2u, 3u}) {
    auto config = base_config();
    config.n_chips = chips;
    config.n_defects = nd;
    const auto r = run_diagnosis_experiment(nl, config);
    print_row(std::to_string(nd), k_mid, r);
  }
  std::printf(
      "=> a hit on ANY injected site counts; additional defects distort\n"
      "   the behavior the single-defect dictionary tries to explain.\n\n");

  // --- A7: traditional logic diagnosis vs statistical diagnosis ---
  std::printf("A7: gross-delay logic baseline vs statistical methods\n");
  {
    auto config = base_config();
    config.n_chips = chips;
    const auto r = run_diagnosis_experiment(nl, config);
    std::printf("  %6s | %7s %7s %7s\n", "K", "logic", "sim-II", "rev");
    for (const int k : {1, 3, 5, 8}) {
      std::printf("  %6d | %6.0f%% %6.0f%% %6.0f%%\n", k,
                  100 * r.logic_baseline_success_rate(k),
                  100 * r.success_rate(Method::kSimII, k),
                  100 * r.success_rate(Method::kRev, k));
    }
    std::printf(
        "=> the logic dictionary assumes gross delays: finite-size defects\n"
        "   violate its 0/1 predictions on short-path cells, and the\n"
        "   statistical matching pulls ahead (the paper's Sections A-C).\n\n");
  }

  // --- A6: automatic K selection (future work #2) ---
  std::printf("A6: automatic K selection heuristics (Alg_rev)\n");
  {
    auto config = base_config();
    config.n_chips = chips;
    const auto r = run_diagnosis_experiment(nl, config);
    // Reconstruct per-chip diagnoses would duplicate work; instead report
    // the fixed-K ladder next to the auto-K behavior measured in
    // tests/test_auto_k.cc.  Here: the success-vs-K ladder auto-K must beat
    // on average.
    std::printf("  fixed-K ladder (rev): ");
    for (const int k : {1, 2, 3, 5, 8, 12}) {
      std::printf("K=%d:%.0f%%  ", k,
                  100 * r.success_rate(Method::kRev, k));
    }
    std::printf("\n  (per-chip adaptive-K resolution is exercised in "
                "examples/error_function_study and tests)\n");
  }
  return 0;
}
