// bench_score - Per-chip scoring throughput: the packed kernel +
// SignatureCache path of Diagnoser::diagnose() against the scalar
// reference, on ISCAS-89-class stand-ins.
//
// For each circuit and each thread count in {1, --threads}, the harness
// diagnoses the same population of failing chips three ways:
//   scalar       - per-chip Monte-Carlo re-simulation (cache = nullptr);
//   kernel cold  - a fresh SignatureCache, first pass over every chip pays
//                  the one-time column builds (the amortized cost);
//   kernel warm  - a second pass over the same chips: every (pattern,
//                  suspect) column is already cached, so scoring is pure
//                  packed-phi evaluation - the steady state a production
//                  run reaches once the first few dies off a tester have
//                  been diagnosed (hundreds of chips share one pattern
//                  set, so first-visit builds are noise, not the regime).
// Scoring time is attributed by the diag.score_ns counter delta (CPU ns,
// equal to wall at 1 thread), so the headline "speedup_scoring" isolates
// exactly the loop the kernel replaces.  Every kernel result is asserted
// BIT-IDENTICAL to its scalar twin - suspects, scores, keys, captured phi,
// ranks - and the warm pass to the cold pass, and the 1-thread results to
// the N-thread results; a mismatch aborts the benchmark, so a
// BENCH_score.json with "bit_identical": true is itself the referee's
// verdict.
//
// Usage:
//   bench_score [--scale S] [--samples N] [--chips N] [--seed N]
//               [--threads N] [--json FILE] [--git-sha SHA] [circuit ...]
//
// Defaults favour a laptop-scale run: s9234 stand-in at scale 0.35, 200
// Monte-Carlo samples, 8 chips.  Timings append to BENCH_history.jsonl via
// tools/run_benchmarks.sh.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "atpg/diag_patterns.h"
#include "atpg/pdf_atpg.h"
#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "diagnosis/signature_matrix.h"
#include "logicsim/bitsim.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "obs/atomic_file.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "stats/sample_vector.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace {

using namespace sddd;
using diagnosis::BehaviorMatrix;
using diagnosis::Diagnoser;
using diagnosis::DiagnosisResult;
using diagnosis::Method;
using netlist::ArcId;

struct BenchConfig {
  double scale = 0.35;
  std::size_t mc_samples = 200;
  std::size_t n_chips = 8;
  std::uint64_t seed = 2003;
  std::size_t threads = 0;  // resolved via runtime::thread_count()
  std::vector<std::string> circuits;
};

void usage() {
  std::fprintf(stderr,
               "usage: bench_score [--scale S] [--samples N] [--chips N]\n"
               "                   [--seed N] [--threads N] [--json FILE]\n"
               "                   [--git-sha SHA] [circuit ...]\n"
               "%s",
               obs::observability_usage());
}

/// One circuit's experiment environment, mirroring ExperimentSetup's
/// dictionary-side constants (eval/experiment.cc) so the measured scoring
/// loop is the one the Table I harness runs.
struct ScoreBench {
  netlist::Netlist nl;
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  timing::DelayField dict_field;
  timing::DelayField inst_field;
  logicsim::BitSimulator logic_sim;
  timing::DynamicTimingSimulator dict_sim;
  timing::DynamicTimingSimulator inst_sim;
  defect::DefectSizeModel size_model;
  std::vector<logicsim::PatternPair> patterns;
  double clk = 0.0;
  std::vector<Method> methods = {Method::kSimI, Method::kSimII,
                                 Method::kSimIII, Method::kRev};
  std::vector<BehaviorMatrix> chips;

  ScoreBench(const netlist::IscasProfile& profile, const BenchConfig& cfg)
      : nl(netlist::make_standin(profile, cfg.scale, cfg.seed)),
        lev(nl),
        model(nl, lib),
        dict_field(model, cfg.mc_samples, 0.03, cfg.seed ^ 0xd1c7ULL),
        inst_field(model, cfg.mc_samples, 0.03, cfg.seed ^ 0xc41bULL),
        logic_sim(nl, lev),
        dict_sim(dict_field, lev),
        inst_sim(inst_field, lev),
        size_model(model.mean_cell_delay(), 0.5, 1.0, 0.5,
                   cfg.seed ^ 0x5e1fULL) {
    stats::Rng rng(cfg.seed, 0xbe7cULL);
    // One shared diagnostic pattern set over a few defect sites - the
    // production shape the cache targets: every failing die off the tester
    // was tested with the same patterns, so suspect columns repeat across
    // chips.  Diagnostic (longest-path) patterns also sensitize the large
    // cones that put |S| in the paper's 100-600 range; random pairs leave
    // |S| in the tens and the scoring loop unrepresentative.
    const atpg::DiagnosticPatternConfig pattern_config;
    std::vector<ArcId> sites;
    for (std::size_t draw = 0; draw < nl.arc_count() && sites.size() < 3;
         ++draw) {
      const auto site = static_cast<ArcId>(
          rng.below(static_cast<std::uint32_t>(nl.arc_count())));
      auto site_patterns = atpg::generate_diagnostic_patterns(
          model, lev, site, pattern_config, rng);
      if (site_patterns.empty()) continue;
      // The patterns must actually launch a transition through the site,
      // or no defect there can ever fail (the experiment's testability
      // gate).
      if (atpg::site_best_nominal_delay(model, lev, site_patterns, site) <=
          0.0) {
        continue;
      }
      sites.push_back(site);
      for (auto& p : site_patterns) patterns.push_back(std::move(p));
    }
    if (sites.empty()) {
      throw std::runtime_error("bench_score: no testable defect site");
    }
    stats::SampleVector delta(dict_field.sample_count(), 0.0);
    for (const auto& p : patterns) {
      const paths::TransitionGraph tg(logic_sim, lev, p);
      const auto m = dict_sim.simulate(tg);
      delta.max_with(dict_sim.induced_delay(tg, m));
    }
    clk = delta.quantile(0.9);

    // The chip population: chip c carries a defect on one of the targeted
    // sites (cycled), drawn as a different field instance, size escalated
    // until the chip observably fails under the shared pattern set.
    for (std::size_t c = 0; c < cfg.n_chips; ++c) {
      const ArcId arc = sites[c % sites.size()];
      bool found = false;
      double size = size_model.marginal_mean();
      for (int tries = 0; tries < 16 && !found; ++tries) {
        auto B = diagnosis::observe_behavior(
            inst_sim, logic_sim, lev, patterns, c % cfg.mc_samples,
            std::make_pair(arc, size), clk);
        if (B.any_failure()) {
          chips.push_back(std::move(B));
          found = true;
        }
        size *= 2.0;
      }
      if (!found) {
        throw std::runtime_error("bench_score: no failing chip producible");
      }
    }
  }

  DiagnosisResult diagnose(const BehaviorMatrix& B,
                           const diagnosis::SignatureCache* cache) const {
    diagnosis::DiagnoserConfig config;
    config.max_suspects = 300;
    config.capture_phi = true;
    config.cache = cache;
    const Diagnoser d(dict_sim, logic_sim, lev, size_model, config);
    return d.diagnose(patterns, B, methods, clk);
  }
};

bool identical(const DiagnosisResult& a, const DiagnosisResult& b) {
  if (a.suspects != b.suspects || a.scores != b.scores || a.keys != b.keys ||
      a.phi != b.phi) {
    return false;
  }
  for (const Method m : a.methods) {
    const auto ra = a.ranked(m);
    const auto rb = b.ranked(m);
    if (ra.size() != rb.size()) return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (ra[i].arc != rb[i].arc || ra[i].score != rb[i].score) return false;
    }
  }
  return true;
}

double score_ns_delta(const obs::MetricsSnapshot& before) {
  return obs::MetricsSnapshot::delta_ns_to_seconds(
      before, obs::MetricsRegistry::instance().snapshot(), "diag.score_ns");
}

struct RunResult {
  std::size_t threads = 0;
  double scalar_score_s = 0.0;       // diag.score_ns, all chips, scalar
  double kernel_cold_score_s = 0.0;  // pass 1, all chips: builds + phi
  double kernel_warm_score_s = 0.0;  // pass 2, all chips: cached columns
  double scalar_wall_s = 0.0;
  double kernel_wall_s = 0.0;
  double speedup_scoring = 0.0;  // per-chip scalar / per-chip warm kernel
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bytes = 0;
  std::size_t suspects = 0;
};

}  // namespace

int main(int argc, char** argv) {
  obs::configure_observability_from_args(&argc, argv);
  BenchConfig cfg;
  std::string json_path = "BENCH_score.json";
  const char* sha_env = std::getenv("SDDD_GIT_SHA");
  std::string git_sha = sha_env != nullptr ? sha_env : "unknown";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      cfg.scale = std::atof(next());
    } else if (arg == "--samples") {
      cfg.mc_samples = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--chips") {
      cfg.n_chips = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--git-sha") {
      git_sha = next();
    } else if (arg == "--threads") {
      sddd::runtime::set_thread_count(
          static_cast<std::size_t>(std::atoi(next())));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      cfg.circuits.push_back(arg);
    }
  }
  if (cfg.circuits.empty()) cfg.circuits.push_back("s9234");
  const std::size_t max_threads = runtime::thread_count();

  SDDD_LOG_INFO("== scoring kernel benchmark ==");
  SDDD_LOG_INFO("scale=%.2f samples=%zu chips=%zu seed=%llu threads=%zu",
                cfg.scale, cfg.mc_samples, cfg.n_chips,
                static_cast<unsigned long long>(cfg.seed), max_threads);

  // One id per invocation: stamped into the JSON artifact, the ledger
  // record and the flight recorder (see bench_table1 for the rationale).
  const std::string run_id =
      obs::new_invocation_run_id("bench_score", git_sha);
  obs::Recorder::instance().set_run_id(run_id);

  const auto t0 = std::chrono::steady_clock::now();
  bool all_identical = true;
  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"score\",\n"
     << "  \"run_id\": \"" << run_id << "\",\n"
     << "  \"git_sha\": \"" << git_sha << "\",\n"
     << "  \"threads\": " << max_threads << ",\n"
     << "  \"scale\": " << cfg.scale << ",\n"
     << "  \"samples\": " << cfg.mc_samples << ",\n"
     << "  \"chips\": " << cfg.n_chips << ",\n"
     << "  \"seed\": " << cfg.seed << ",\n";

  std::ostringstream circuits_js;
  for (std::size_t ci = 0; ci < cfg.circuits.size(); ++ci) {
    const auto& name = cfg.circuits[ci];
    const auto* profile = netlist::find_profile(name);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown circuit: %s\n", name.c_str());
      return 2;
    }
    const auto circuit_t0 = std::chrono::steady_clock::now();
    const ScoreBench bench(*profile, cfg);
    SDDD_LOG_INFO("%s: %zu arcs, %zu chips, clk=%.1f", name.c_str(),
                  bench.nl.arc_count(), bench.chips.size(), bench.clk);

    // 1-thread reference results, asserted equal at every thread count.
    std::vector<DiagnosisResult> reference;
    std::vector<RunResult> runs;
    std::vector<std::size_t> widths = {1};
    if (max_threads > 1) widths.push_back(max_threads);
    for (const std::size_t width : widths) {
      runtime::set_thread_count(width);
      if (width > 1) bench.dict_sim.prewarm();
      RunResult run;
      run.threads = width;

      // Scalar reference.
      auto wall0 = std::chrono::steady_clock::now();
      auto snap = obs::MetricsRegistry::instance().snapshot();
      std::vector<DiagnosisResult> scalar;
      scalar.reserve(bench.chips.size());
      for (const auto& B : bench.chips) {
        scalar.push_back(bench.diagnose(B, nullptr));
      }
      run.scalar_score_s = score_ns_delta(snap);
      run.scalar_wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall0)
              .count();

      // Kernel, pass 1 (cold): a fresh cache absorbs every column build
      // the chip population needs.
      const diagnosis::SignatureCache cache(bench.dict_sim, bench.logic_sim,
                                            bench.lev, bench.size_model,
                                            bench.clk, true);
      wall0 = std::chrono::steady_clock::now();
      snap = obs::MetricsRegistry::instance().snapshot();
      std::vector<DiagnosisResult> kernel;
      kernel.reserve(bench.chips.size());
      for (const auto& B : bench.chips) {
        kernel.push_back(bench.diagnose(B, &cache));
      }
      run.kernel_cold_score_s = score_ns_delta(snap);
      // Pass 2 (warm): same chips, fully-populated cache - steady-state
      // scoring throughput, and a determinism check (warm == cold results).
      snap = obs::MetricsRegistry::instance().snapshot();
      std::vector<DiagnosisResult> warm;
      warm.reserve(bench.chips.size());
      for (const auto& B : bench.chips) {
        warm.push_back(bench.diagnose(B, &cache));
      }
      run.kernel_warm_score_s = score_ns_delta(snap);
      run.kernel_wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall0)
              .count();

      const auto stats = cache.stats();
      run.cache_hits = stats.hits;
      run.cache_misses = stats.misses;
      run.cache_bytes = stats.bytes;
      run.suspects = scalar.front().suspects.size();

      // Per-chip scoring speedup: scalar vs warm kernel (the steady state
      // every chip after cache fill enjoys).
      const double scalar_per_chip =
          run.scalar_score_s / static_cast<double>(bench.chips.size());
      const double warm_per_chip =
          run.kernel_warm_score_s / static_cast<double>(bench.chips.size());
      run.speedup_scoring =
          warm_per_chip > 0.0 ? scalar_per_chip / warm_per_chip : 0.0;

      // The referee: every kernel result bit-identical to its scalar twin,
      // warm pass to cold pass, and every width to the 1-thread reference.
      for (std::size_t c = 0; c < bench.chips.size(); ++c) {
        if (!identical(scalar[c], kernel[c])) {
          all_identical = false;
          std::fprintf(stderr,
                       "%s: scalar/kernel MISMATCH chip %zu at %zu threads\n",
                       name.c_str(), c, width);
        }
        if (!identical(kernel[c], warm[c])) {
          all_identical = false;
          std::fprintf(stderr,
                       "%s: cold/warm MISMATCH chip %zu at %zu threads\n",
                       name.c_str(), c, width);
        }
        if (reference.empty()) continue;
        if (!identical(reference[c], kernel[c])) {
          all_identical = false;
          std::fprintf(stderr,
                       "%s: thread-count MISMATCH chip %zu at %zu threads\n",
                       name.c_str(), c, width);
        }
      }
      if (reference.empty()) reference = std::move(scalar);

      std::printf(
          "%-8s %2zu thr | scalar %7.3fs  kernel cold %7.3fs  warm %7.3fs "
          "| scoring speedup %5.1fx | %zu suspects, cache %llu/%llu "
          "hit/miss\n",
          name.c_str(), width, run.scalar_score_s, run.kernel_cold_score_s,
          run.kernel_warm_score_s, run.speedup_scoring, run.suspects,
          static_cast<unsigned long long>(run.cache_hits),
          static_cast<unsigned long long>(run.cache_misses));
      runs.push_back(run);
    }
    runtime::set_thread_count(max_threads);

    const double circuit_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      circuit_t0)
            .count();
    circuits_js << "    {\"name\": \"" << name << "\", \"seconds\": "
                << circuit_seconds << ", \"arcs\": " << bench.nl.arc_count()
                << ", \"patterns\": " << bench.patterns.size()
                << ", \"suspects\": " << runs.front().suspects
                << ",\n     \"runs\": [\n";
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const RunResult& run = runs[r];
      circuits_js << "      {\"threads\": " << run.threads
                  << ", \"scalar_score_s\": " << run.scalar_score_s
                  << ", \"kernel_cold_score_s\": " << run.kernel_cold_score_s
                  << ", \"kernel_warm_score_s\": " << run.kernel_warm_score_s
                  << ",\n       \"scalar_wall_s\": " << run.scalar_wall_s
                  << ", \"kernel_wall_s\": " << run.kernel_wall_s
                  << ", \"speedup_scoring\": " << run.speedup_scoring
                  << ",\n       \"cache_hits\": " << run.cache_hits
                  << ", \"cache_misses\": " << run.cache_misses
                  << ", \"cache_bytes\": " << run.cache_bytes << "}"
                  << (r + 1 < runs.size() ? "," : "") << "\n";
    }
    circuits_js << "    ]}" << (ci + 1 < cfg.circuits.size() ? "," : "")
                << "\n";
  }

  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  js << "  \"bit_identical\": " << (all_identical ? "true" : "false")
     << ",\n"
     << "  \"total_seconds\": " << total_seconds << ",\n"
     << "  \"circuits\": [\n"
     << circuits_js.str() << "  ]\n}\n";

  if (!json_path.empty()) {
    obs::atomic_write_file_or_throw(json_path, js.str());
    SDDD_LOG_INFO("timings written to %s", json_path.c_str());
  }
  std::printf("total wall time: %.2fs; bit-identical: %s\n", total_seconds,
              all_identical ? "yes" : "NO");

  if (!obs::ledger_out_path().empty()) {
    obs::LedgerRecord rec;
    rec.run_id = run_id;
    rec.tool = "bench_score";
    rec.git_sha = git_sha;
    rec.seed = cfg.seed;
    rec.threads = max_threads;
    rec.mc_samples = cfg.mc_samples;
    rec.n_chips = cfg.n_chips;
    rec.wall_seconds = total_seconds;
    for (const auto& name : cfg.circuits) {
      if (!rec.circuit.empty()) rec.circuit.push_back(',');
      rec.circuit += name;
    }
    rec.counters = obs::MetricsRegistry::instance().snapshot().counters;
    rec.peak_rss_kb = obs::read_peak_rss_kb();
    rec.result_path = json_path;
    rec.unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (obs::append_ledger_record(obs::ledger_out_path(), rec)) {
      SDDD_LOG_INFO("ledger: appended run %s to %s", rec.run_id.c_str(),
                    obs::ledger_out_path().c_str());
    }
  }
  return all_identical ? 0 : 1;
}
