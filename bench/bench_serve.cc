// bench_serve - Serve-path throughput: the batch diagnosis server
// answering canonical diagnose requests over its wire protocol, measured
// end to end (framing, routing, mmapped-store scoring, response render).
//
// The harness builds a dictionary store for each circuit stand-in, boots
// an in-process DiagnosisServer on a unix socket, draws a batch of
// failing chips from the instance Monte-Carlo world, and then replays the
// same diagnose request from 1 and then --clients concurrent load-gen
// threads, each following the production retry/backoff discipline
// (request_with_retry).  The headline number is chips/sec per width.
//
// Every response from every client is asserted BYTE-IDENTICAL to the
// in-process StoreQueryEngine render of the same batch - a serve run that
// returns even one divergent byte exits non-zero, so a BENCH_serve.json
// with "bit_identical": true is itself the referee's verdict that the
// socket path answers exactly what an offline `sddd_cli dict query`
// would.  Sheds and reconnects absorbed by the retry policy are counted
// per width (normally 0; nonzero means the in-flight budget was hit).
//
// Usage:
//   bench_serve [--scale S] [--samples N] [--batch N] [--clients N]
//               [--requests N] [--seed N] [--json FILE] [--git-sha SHA]
//               [circuit ...]
//
// Defaults favour a laptop-scale run: s9234 stand-in at scale 0.35, 120
// Monte-Carlo samples, 6 chips per request, 4 clients x 6 requests.
// Timings append to BENCH_history.jsonl via tools/run_benchmarks.sh
// ("bench": "serve" records carry the clients/batch shape fields).
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/iscas_catalog.h"
#include "obs/atomic_file.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/parallel_for.h"
#include "store/client.h"
#include "store/query.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"

using namespace sddd;

namespace {

struct BenchConfig {
  double scale = 0.35;
  std::size_t mc_samples = 120;
  std::size_t batch = 6;       // chips per diagnose request
  std::size_t clients = 4;     // peak concurrent load-gen threads
  std::size_t requests = 6;    // requests per client per width
  std::uint64_t seed = 2003;
  std::vector<std::string> circuits;
};

struct WidthResult {
  std::size_t clients = 0;
  double wall_s = 0.0;
  double chips_per_s = 0.0;
  std::size_t sheds = 0;
  std::size_t reconnects = 0;
  bool identical = true;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_serve [--scale S] [--samples N] [--batch N]\n"
               "                   [--clients N] [--requests N] [--seed N]\n"
               "                   [--json FILE] [--git-sha SHA]\n"
               "                   [circuit ...]\n");
  std::exit(2);
}

/// One load-gen width: `clients` threads, each sending `requests` copies
/// of `request` and checking every response against `expected`.
WidthResult run_width(const std::string& socket_path, std::size_t clients,
                      std::size_t requests, const std::string& request,
                      const std::string& expected, std::size_t batch) {
  std::atomic<std::size_t> sheds{0};
  std::atomic<std::size_t> reconnects{0};
  std::atomic<bool> identical{true};
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      store::ServeClient client = store::ServeClient::connect(socket_path, -1);
      for (std::size_t r = 0; r < requests; ++r) {
        store::RetryStats stats;
        const std::string response = store::request_with_retry(
            client, socket_path, -1, request, store::RetryPolicy{}, &stats);
        sheds += stats.sheds;
        reconnects += stats.reconnects;
        // The scored payload inside the trace envelope is the
        // byte-identity surface; the envelope itself carries the id.
        if (store::response_payload(response) != expected) identical = false;
      }
    });
  }
  for (auto& t : threads) t.join();
  WidthResult out;
  out.clients = clients;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  out.chips_per_s = out.wall_s > 0.0
                        ? static_cast<double>(clients * requests * batch) /
                              out.wall_s
                        : 0.0;
  out.sheds = sheds;
  out.reconnects = reconnects;
  out.identical = identical;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::configure_observability_from_args(&argc, argv);
  runtime::configure_threads_from_args(&argc, argv);

  BenchConfig cfg;
  const char* sha_env = std::getenv("SDDD_GIT_SHA");
  std::string git_sha = sha_env != nullptr ? sha_env : "unknown";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--scale") {
      cfg.scale = std::atof(next());
    } else if (arg == "--samples") {
      cfg.mc_samples = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--batch") {
      cfg.batch = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--clients") {
      cfg.clients = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--requests") {
      cfg.requests = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--git-sha") {
      git_sha = next();
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      cfg.circuits.push_back(arg);
    }
  }
  if (cfg.circuits.empty()) cfg.circuits.push_back("s9234");
  if (cfg.clients == 0 || cfg.requests == 0 || cfg.batch == 0) usage();

  const std::string run_id =
      obs::new_invocation_run_id("bench_serve", git_sha);
  std::printf("bench_serve: scale %.2f, %zu samples, batch %zu, "
              "%zu clients x %zu requests, run %s\n",
              cfg.scale, cfg.mc_samples, cfg.batch, cfg.clients, cfg.requests,
              run_id.c_str());

  const std::filesystem::path tmp =
      std::filesystem::temp_directory_path() /
      ("bench_serve." + std::to_string(::getpid()));
  std::filesystem::create_directories(tmp);

  bool all_identical = true;
  std::ostringstream circuits_js;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t ci = 0; ci < cfg.circuits.size(); ++ci) {
    const auto& name = cfg.circuits[ci];
    const netlist::IscasProfile* profile = netlist::find_profile(name);
    if (profile == nullptr) {
      std::fprintf(stderr, "bench_serve: unknown circuit %s\n", name.c_str());
      return 2;
    }
    const auto c0 = std::chrono::steady_clock::now();
    const auto nl = netlist::make_standin(*profile, cfg.scale, cfg.seed);

    store::StoreBuildConfig build;
    build.mc_samples = cfg.mc_samples;
    build.seed = cfg.seed;
    const std::string store_path = (tmp / (name + ".dict")).string();
    store::build_dictionary_store(nl, build, store_path);

    const store::DictionaryStore st(store_path);
    const store::StoreQueryEngine engine(st);
    const auto sampled = store::sample_failing_chips(nl, st, cfg.batch);
    if (sampled.empty()) {
      std::fprintf(stderr, "bench_serve: %s drew no failing chips\n",
                   name.c_str());
      return 1;
    }
    std::vector<store::ChipQuery> chips;
    for (std::size_t t = 0; t < sampled.size(); ++t) {
      chips.push_back(
          store::ChipQuery{"chip" + std::to_string(t), sampled[t].B});
    }
    const std::string request = store::make_diagnose_request(
        st.run_id(), "e", /*top_k=*/10, /*deadline_ms=*/0, chips);
    const std::string expected =
        store::diagnose_batch_json(engine, chips, true, 10);

    store::ServerConfig server_cfg;
    server_cfg.store_paths = {store_path};
    server_cfg.unix_socket = (tmp / (name + ".sock")).string();
    server_cfg.max_inflight = std::max<std::size_t>(cfg.clients, 4);
    server_cfg.git_sha = git_sha;
    store::DiagnosisServer server(server_cfg);
    server.start();

    std::vector<WidthResult> runs;
    for (const std::size_t width :
         std::vector<std::size_t>{1, cfg.clients}) {
      if (width != 1 && width == runs.back().clients) break;
      runs.push_back(run_width(server_cfg.unix_socket, width, cfg.requests,
                               request, expected, chips.size()));
      const auto& r = runs.back();
      all_identical = all_identical && r.identical;
      std::printf("  %s @%zu clients: %.2fs, %.1f chips/s "
                  "(%zu sheds, %zu reconnects)%s\n",
                  name.c_str(), r.clients, r.wall_s, r.chips_per_s, r.sheds,
                  r.reconnects, r.identical ? "" : "  RESPONSES DIVERGED");
    }
    // Server-reported request latency: ask the live server's `stats` op
    // (the production observability surface) before draining it.
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
    {
      store::ServeClient sc =
          store::ServeClient::connect(server_cfg.unix_socket, -1);
      const std::string stats_payload =
          store::response_payload(sc.request("{\"op\":\"stats\"}"));
      const store::JsonValue stats_json = store::parse_json(stats_payload);
      const store::JsonValue* window = stats_json.get("window");
      const store::JsonValue* hists =
          window != nullptr ? window->get("histograms") : nullptr;
      const store::JsonValue* hist =
          hists != nullptr ? hists->get("serve.request_us") : nullptr;
      if (hist == nullptr || hist->get_number("total") <= 0.0) {
        std::fprintf(stderr,
                     "bench_serve: stats response has no serve.request_us "
                     "latency histogram\n");
        return 1;
      }
      p50_ms = hist->get_number("p50") / 1000.0;
      p95_ms = hist->get_number("p95") / 1000.0;
      p99_ms = hist->get_number("p99") / 1000.0;
    }

    server.request_drain();
    server.wait();

    const double circuit_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
    circuits_js << "    {\"name\": \"" << name << "\", \"seconds\": "
                << circuit_s << ",\n      \"latency_p50_ms\": " << p50_ms
                << ", \"latency_p95_ms\": " << p95_ms
                << ", \"latency_p99_ms\": " << p99_ms << ",\n"
                << "      \"runs\": [\n";
    for (std::size_t ri = 0; ri < runs.size(); ++ri) {
      const auto& r = runs[ri];
      circuits_js << "      {\"clients\": " << r.clients
                  << ", \"wall_s\": " << r.wall_s
                  << ", \"chips_per_s\": " << r.chips_per_s
                  << ", \"sheds\": " << r.sheds
                  << ", \"reconnects\": " << r.reconnects << "}"
                  << (ri + 1 < runs.size() ? "," : "") << "\n";
    }
    circuits_js << "    ]}" << (ci + 1 < cfg.circuits.size() ? "," : "")
                << "\n";
  }
  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Headline latency across every circuit and width: the cumulative
  // serve.request_us histogram all in-process servers recorded into (the
  // same one the serve ledger records at drain).
  double lat_p50_ms = 0.0, lat_p95_ms = 0.0, lat_p99_ms = 0.0;
  {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    const auto it = snap.histograms.find("serve.request_us");
    if (it == snap.histograms.end() || it->second.total() == 0) {
      std::fprintf(stderr,
                   "bench_serve: cumulative serve.request_us histogram is "
                   "empty\n");
      return 1;
    }
    lat_p50_ms = it->second.quantile(0.50) / 1000.0;
    lat_p95_ms = it->second.quantile(0.95) / 1000.0;
    lat_p99_ms = it->second.quantile(0.99) / 1000.0;
  }

  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"bit_identical\": " << (all_identical ? "true" : "false") << ",\n"
     << "  \"run_id\": \"" << run_id << "\",\n"
     << "  \"git_sha\": \"" << git_sha << "\",\n"
     << "  \"threads\": " << runtime::thread_count() << ",\n"
     << "  \"scale\": " << cfg.scale << ",\n"
     << "  \"samples\": " << cfg.mc_samples << ",\n"
     << "  \"clients\": " << cfg.clients << ",\n"
     << "  \"batch\": " << cfg.batch << ",\n"
     << "  \"requests\": " << cfg.requests << ",\n"
     << "  \"chips\": " << cfg.batch << ",\n"
     << "  \"latency_p50_ms\": " << lat_p50_ms << ",\n"
     << "  \"latency_p95_ms\": " << lat_p95_ms << ",\n"
     << "  \"latency_p99_ms\": " << lat_p99_ms << ",\n"
     << "  \"total_seconds\": " << total_seconds << ",\n"
     << "  \"circuits\": [\n"
     << circuits_js.str() << "  ]\n}\n";
  if (!json_path.empty()) {
    obs::atomic_write_file_or_throw(json_path, js.str());
    SDDD_LOG_INFO("timings written to %s", json_path.c_str());
  }
  std::printf("total wall time: %.2fs; bit-identical: %s\n", total_seconds,
              all_identical ? "yes" : "NO");
  std::printf("server-reported latency: p50 %.2fms, p95 %.2fms, p99 %.2fms\n",
              lat_p50_ms, lat_p95_ms, lat_p99_ms);

  if (!obs::ledger_out_path().empty()) {
    obs::LedgerRecord rec;
    rec.run_id = run_id;
    rec.tool = "bench_serve";
    rec.git_sha = git_sha;
    rec.seed = cfg.seed;
    rec.threads = runtime::thread_count();
    rec.mc_samples = cfg.mc_samples;
    rec.n_chips = cfg.batch * cfg.requests * cfg.clients;
    rec.bench = "serve";
    rec.clients = cfg.clients;
    rec.batch = cfg.batch;
    rec.wall_seconds = total_seconds;
    for (const auto& name : cfg.circuits) {
      if (!rec.circuit.empty()) rec.circuit.push_back(',');
      rec.circuit += name;
    }
    rec.counters = obs::MetricsRegistry::instance().snapshot().counters;
    rec.phases["latency_p50_ms"] = lat_p50_ms;
    rec.phases["latency_p95_ms"] = lat_p95_ms;
    rec.phases["latency_p99_ms"] = lat_p99_ms;
    rec.peak_rss_kb = obs::read_peak_rss_kb();
    rec.result_path = json_path;
    rec.unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (obs::append_ledger_record(obs::ledger_out_path(), rec)) {
      SDDD_LOG_INFO("ledger: appended run %s to %s", rec.run_id.c_str(),
                    obs::ledger_out_path().c_str());
    }
  }
  std::filesystem::remove_all(tmp);
  return all_identical ? 0 : 1;
}
