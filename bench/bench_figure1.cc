// bench_figure1 - Regenerates the two case studies of the paper's Figure 1
// ("Examples of Problems in Delay Fault Diagnosis").
//
// Case 1: one fault site, two logically-equivalent detecting patterns, one
// sensitizing a LONG path and one a SHORT path.  The per-pattern critical
// probability (shaded area of Figure 1) differs drastically: the
// short-path pattern misses small defects entirely - so patterns that
// differentiate faults in the logic domain may not do so in the timing
// domain.
//
// Case 2: one pattern detecting two faults through paths p1, p2 that merge
// at a 2-input cell with Prob(a1 > a2) = 1.  Because p1 always dominates
// the output arrival, the pattern differentiates the two faults
// timing-wise even though it cannot logically.
#include <cstdio>

#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "obs/obs.h"
#include "paths/transition_graph.h"
#include "runtime/parallel_for.h"
#include "stats/histogram.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

using namespace sddd;
using logicsim::PatternPair;
using netlist::CellType;
using netlist::GateId;

namespace {

constexpr std::size_t kSamples = 4000;

/// Case 1 circuit: fault site X driven by A; a 6-buffer long branch to
/// PO "long" (AND with side S1) and a direct short branch to PO "short"
/// (AND with side S2).
struct Case1 {
  netlist::Netlist nl{"fig1-case1"};
  GateId a, s1, s2, x, po_long, po_short;
  netlist::ArcId site;

  Case1() {
    a = nl.add_input("A");
    s1 = nl.add_input("S1");
    s2 = nl.add_input("S2");
    x = nl.add_gate(CellType::kBuf, "X", {a});
    GateId prev = x;
    for (int i = 0; i < 6; ++i) {
      prev = nl.add_gate(CellType::kBuf, "L" + std::to_string(i), {prev});
    }
    po_long = nl.add_gate(CellType::kAnd, "PO_long", {prev, s1});
    po_short = nl.add_gate(CellType::kAnd, "PO_short", {x, s2});
    nl.add_output(po_long);
    nl.add_output(po_short);
    nl.freeze();
    site = nl.arc_of(x, 0);  // the A -> X pin: the fault site d
  }
};

void run_case1() {
  std::printf("--- Figure 1, case 1: long vs short sensitized path ---\n");
  Case1 c;
  const netlist::Levelization lev(c.nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(c.nl, lib);
  const timing::DelayField field(model, kSamples, 0.03, 2003);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(c.nl, lev);

  // v1: A rises, S1=1 (long path sensitized), S2=0.
  const PatternPair v_long{{false, true, false}, {true, true, false}};
  // v2: A rises, S1=0, S2=1 (short path sensitized).
  const PatternPair v_short{{false, false, true}, {true, false, true}};

  const paths::TransitionGraph tg_long(sim, lev, v_long);
  const paths::TransitionGraph tg_short(sim, lev, v_short);
  const auto arr_long = dyn.simulate(tg_long);
  const auto arr_short = dyn.simulate(tg_short);

  const auto delta_long = dyn.induced_delay(tg_long, arr_long);
  const auto delta_short = dyn.induced_delay(tg_short, arr_short);
  std::printf("TL(p1) [long]  mean=%7.1f sd=%5.1f\n", delta_long.mean(),
              delta_long.stddev());
  std::printf("TL(p2) [short] mean=%7.1f sd=%5.1f\n", delta_short.mean(),
              delta_short.stddev());

  // clk cutting the upper tail of the long path's pdf, as drawn in
  // Figure 1: the shaded area is the defect-free critical probability of
  // the long path; the short path has enormous slack.
  const double clk = delta_long.quantile(0.9);
  std::printf("clk = %.1f tu (q90 of TL(p1))\n\n", clk);

  std::printf("arrival pdf via v1 (long path), '|' marks clk:\n%s\n",
              stats::Histogram(delta_long, 16).ascii(40, clk).c_str());
  std::printf("arrival pdf via v2 (short path):\n%s\n",
              stats::Histogram(delta_short, 16).ascii(40, clk).c_str());

  std::printf("critical probability vs defect size delta at the shared "
              "fault site d:\n");
  std::printf("%10s %18s %18s\n", "delta(tu)", "P(fail | v1 long)",
              "P(fail | v2 short)");
  for (const double delta : {0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    timing::InjectedDefect defect;
    defect.arc = c.site;
    defect.extra.assign(kSamples, delta);
    const auto e_long =
        dyn.error_vector_with_defect(tg_long, arr_long, defect, clk);
    const auto e_short =
        dyn.error_vector_with_defect(tg_short, arr_short, defect, clk);
    std::printf("%10.0f %18.4f %18.4f\n", delta, e_long[0], e_short[1]);
  }
  std::printf(
      "\n=> small defects are visible through the long path only: a pattern\n"
      "   that differentiates faults logically may detect nothing in the\n"
      "   timing domain (paper, Figure 1 case 1).\n\n");
}

/// Case 2 circuit: A fans out into a long branch p1 (6 buffers) and a
/// short branch p2 (1 buffer) that reconverge at AND gate M driving the PO.
struct Case2 {
  netlist::Netlist nl{"fig1-case2"};
  GateId a, m;
  netlist::ArcId d1, d2;  // fault sites on p1 / p2

  Case2() {
    a = nl.add_input("A");
    GateId p1 = nl.add_gate(CellType::kBuf, "P1_0", {a});
    for (int i = 1; i < 6; ++i) {
      p1 = nl.add_gate(CellType::kBuf, "P1_" + std::to_string(i), {p1});
    }
    const GateId p2 = nl.add_gate(CellType::kBuf, "P2_0", {a});
    m = nl.add_gate(CellType::kAnd, "M", {p1, p2});
    nl.add_output(m);
    nl.freeze();  // arc numbering exists only after freeze()
    d1 = nl.arc_of(nl.find("P1_0"), 0);
    d2 = nl.arc_of(nl.find("P2_0"), 0);
  }
};

void run_case2() {
  std::printf("--- Figure 1, case 2: merging paths, Prob(a1 > a2) = 1 ---\n");
  Case2 c;
  const netlist::Levelization lev(c.nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(c.nl, lib);
  const timing::DelayField field(model, kSamples, 0.03, 2003);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(c.nl, lev);

  // v: A rises 0 -> 1; both branches carry rising transitions into the AND,
  // whose output settles when the LAST one (p1) arrives: max(a1, a2) = a1.
  const PatternPair v{{false}, {true}};
  const paths::TransitionGraph tg(sim, lev, v);
  const auto arr = dyn.simulate(tg);

  // Empirical Prob(a1 > a2) over the joint samples.
  const GateId n1 = c.nl.find("P1_5");
  const GateId n2 = c.nl.find("P2_0");
  std::size_t dominated = 0;
  for (std::size_t k = 0; k < kSamples; ++k) {
    dominated += (arr.rows[n1][k] > arr.rows[n2][k]) ? 1U : 0U;
  }
  std::printf("Prob(a1 > a2) = %.4f  (p1 always dominates max(a1, a2))\n",
              static_cast<double>(dominated) / kSamples);

  const auto delta = dyn.induced_delay(tg, arr);
  const double clk = delta.quantile(0.9);
  std::printf("clk = %.1f tu (q90 of the defect-free output arrival)\n\n", clk);

  std::printf("P(fail) under the SAME pattern v for a defect on p1 vs p2:\n");
  std::printf("%10s %16s %16s\n", "delta(tu)", "defect d1 (p1)",
              "defect d2 (p2)");
  for (const double d : {0.0, 30.0, 60.0, 120.0, 240.0, 480.0}) {
    timing::InjectedDefect on1;
    on1.arc = c.d1;
    on1.extra.assign(kSamples, d);
    timing::InjectedDefect on2;
    on2.arc = c.d2;
    on2.extra.assign(kSamples, d);
    const auto e1 = dyn.error_vector_with_defect(tg, arr, on1, clk);
    const auto e2 = dyn.error_vector_with_defect(tg, arr, on2, clk);
    std::printf("%10.0f %16.4f %16.4f\n", d, e1[0], e2[0]);
  }
  std::printf(
      "\n=> logically v detects both faults, but timing-wise d1 shows at\n"
      "   small sizes while d2 stays masked behind the dominating path -\n"
      "   the pattern differentiates the faults (paper, Figure 1 case 2).\n");
}

}  // namespace

int main(int argc, char** argv) {
  sddd::obs::configure_observability_from_args(&argc, argv);
  sddd::runtime::configure_threads_from_args(&argc, argv);
  std::printf("== Figure 1 reproduction ==\n\n");
  run_case1();
  run_case2();
  return 0;
}
