// bench_coverage - Statistical delay-fault coverage and diagnostic pattern
// selection studies.
//
//   C1  Coverage vs defect size: the quantitative version of Figure 1's
//       escape argument - at the paper's 0.5-1.0 cell-delay sizes only
//       near-critical sites are caught; coverage rises with size.
//   C2  Coverage by site criticality: random sites vs the most critical
//       arcs (timing/criticality.h), same pattern set.
//   C3  Pattern selection: the greedy dictionary-driven selection's
//       distinguished-pairs curve vs picking patterns in arrival order -
//       the paper's point that logic-optimal pattern sets are not
//       diagnosis-optimal.
#include <algorithm>
#include <cstdio>

#include "atpg/diag_patterns.h"
#include "defect/defect_model.h"
#include "diagnosis/pattern_select.h"
#include "eval/coverage.h"
#include "logicsim/bitsim.h"
#include "netlist/iscas_catalog.h"
#include "obs/obs.h"
#include "netlist/levelize.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/criticality.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

using namespace sddd;
using netlist::ArcId;

int main(int argc, char** argv) {
  obs::configure_observability_from_args(&argc, argv);
  runtime::configure_threads_from_args(&argc, argv);
  const auto nl =
      netlist::make_standin(*netlist::find_profile("s1238"), 0.5, 2003);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 250, 0.03, 15);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(nl, lev);
  std::printf("== Coverage & pattern-selection studies (%s) ==\n\n",
              nl.summary().c_str());

  // A production-style test set: longest sensitizable paths through a
  // spread of sites (remember which sites the set was built for).
  stats::Rng rng(16);
  std::vector<logicsim::PatternPair> patterns;
  std::vector<ArcId> targeted_sites;
  atpg::DiagnosticPatternConfig pattern_config;
  pattern_config.max_patterns = 6;
  for (int s = 0; s < 5; ++s) {
    const auto site =
        static_cast<ArcId>(rng.below(static_cast<std::uint32_t>(nl.arc_count())));
    targeted_sites.push_back(site);
    for (auto& p : atpg::generate_diagnostic_patterns(model, lev, site,
                                                      pattern_config, rng)) {
      patterns.push_back(std::move(p));
    }
  }
  std::printf("test set: %zu patterns targeting %zu sites\n", patterns.size(),
              targeted_sites.size());

  // clk near the top of what the set can exercise.
  stats::SampleVector delta(field.sample_count(), 0.0);
  for (const auto& p : patterns) {
    const paths::TransitionGraph tg(sim, lev, p);
    delta.max_with(dyn.induced_delay(tg, dyn.simulate(tg)));
  }
  const double clk = delta.quantile(0.95);
  std::printf("clk = %.1f tu (q95 of the set's induced delay)\n\n", clk);

  // Random site sample.
  std::vector<ArcId> random_sites;
  for (int i = 0; i < 40; ++i) {
    random_sites.push_back(
        static_cast<ArcId>(rng.below(static_cast<std::uint32_t>(nl.arc_count()))));
  }

  // --- C1: coverage vs defect size ---
  std::printf("C1: mean coverage over %zu random sites vs defect size\n",
              random_sites.size());
  std::printf("%-22s %10s %12s %16s\n", "defect mean (x cell)", "mean cov",
              "cov >= 50%", "good-chip fail");
  for (const auto& [lo, hi] : {std::pair{0.25, 0.5}, std::pair{0.5, 1.0},
                              std::pair{1.0, 2.0}, std::pair{2.0, 4.0},
                              std::pair{4.0, 8.0}}) {
    const defect::DefectSizeModel size_model(model.mean_cell_delay(), lo, hi,
                                             0.5, 17);
    const auto cov = eval::statistical_coverage(
        dyn, sim, lev, patterns, random_sites, size_model, clk);
    std::printf("[%4.2f, %4.2f]          %9.3f %11.1f%% %15.3f\n", lo, hi,
                cov.mean_coverage(), 100.0 * cov.detection_rate(0.5),
                cov.defect_free_fail);
  }
  std::printf("=> the paper's 0.5-1.0 regime leaves most random sites\n"
              "   undetected (Figure 1 escapes); big defects saturate.\n\n");

  // --- C2: targeted vs untargeted vs statically critical sites ---
  const timing::CriticalityAnalysis crit(field, lev);
  const auto ranked = crit.ranked_arcs();
  std::vector<ArcId> critical_sites(
      ranked.begin(), ranked.begin() + std::min<std::size_t>(40, ranked.size()));
  const defect::DefectSizeModel paper_size =
      defect::DefectSizeModel::paper_default(model.mean_cell_delay(), 18);
  const auto cov_random = eval::statistical_coverage(
      dyn, sim, lev, patterns, random_sites, paper_size, clk);
  const auto cov_crit = eval::statistical_coverage(
      dyn, sim, lev, patterns, critical_sites, paper_size, clk);
  const auto cov_target = eval::statistical_coverage(
      dyn, sim, lev, patterns, targeted_sites, paper_size, clk);
  std::printf("C2: paper-size defects - who does the test set protect?\n");
  std::printf("  targeted sites:           mean cov %.3f, >=50%% for %.0f%%\n",
              cov_target.mean_coverage(),
              100.0 * cov_target.detection_rate(0.5));
  std::printf("  random sites:             mean cov %.3f, >=50%% for %.0f%%\n",
              cov_random.mean_coverage(),
              100.0 * cov_random.detection_rate(0.5));
  std::printf("  statically critical arcs: mean cov %.3f, >=50%% for %.0f%%\n",
              cov_crit.mean_coverage(), 100.0 * cov_crit.detection_rate(0.5));
  std::printf(
      "=> small-defect coverage follows what the patterns *sensitize*, not\n"
      "   the structural criticality - the paper's point that pattern\n"
      "   quality, not just circuit topology, decides detectability.\n\n");

  // --- C3: diagnostic pattern selection ---
  std::printf("C3: greedy dictionary-driven pattern selection\n");
  // Suspects must be arcs the set can excite at all: take arcs active
  // under the first few patterns, spread across the circuit.
  std::vector<ArcId> suspects;
  {
    // Arcs on active paths into the first toggling output of pattern 0 -
    // a realistic suspect set (they share paths, so telling them apart is
    // the hard part).
    const paths::TransitionGraph tg(sim, lev, patterns[0]);
    for (const netlist::GateId o : nl.outputs()) {
      if (!tg.toggles(o)) continue;
      const auto cone = tg.cone_to_output(o);
      for (ArcId a = 0; a < nl.arc_count() && suspects.size() < 16; ++a) {
        if (cone[a]) suspects.push_back(a);
      }
      if (suspects.size() >= 8) break;
    }
  }
  diagnosis::PatternSelectConfig select_config;
  select_config.budget = 8;
  select_config.epsilon = 0.02;
  const auto sel = diagnosis::select_diagnostic_patterns(
      dyn, sim, lev, patterns, suspects, paper_size, clk, select_config);
  std::printf("  %zu suspects -> %zu pairs; selection curve:\n",
              suspects.size(), sel.total_pairs);
  for (std::size_t i = 0; i < sel.chosen.size(); ++i) {
    std::printf("    pick %zu = pattern %2zu: %4zu/%zu pairs (%.0f%%)\n",
                i + 1, sel.chosen[i], sel.pairs_covered[i], sel.total_pairs,
                100.0 * static_cast<double>(sel.pairs_covered[i]) /
                    static_cast<double>(std::max<std::size_t>(sel.total_pairs, 1)));
  }
  std::printf(
      "=> a handful of well-chosen patterns distinguishes most suspect\n"
      "   pairs; the rest of the set adds little diagnostic power (the\n"
      "   paper's question (2)).\n");
  return 0;
}
