// bench_figure2 - Regenerates the paper's Figure 2 ("Illustration of The
// Key Problem"): matching a 0/1 behavior matrix against probabilistic
// fault signatures is ambiguous - focusing on the failing cells favours
// one fault, focusing on the passing cells favours another.  The paper's
// exact numbers are used; the four diagnosis error functions then resolve
// the dilemma, each its own way.
//
//            vec1  vec2          fault #1        fault #2
//   PO1       1     0          0.8   0.5        0.6   0.2
//   PO2       0     1          0.4   0.6        0.3   0.5
#include <cstdio>

#include "diagnosis/error_fn.h"
#include "obs/obs.h"
#include "runtime/parallel_for.h"

using sddd::diagnosis::Method;
using sddd::diagnosis::ScoreAccumulator;
using sddd::diagnosis::method_name;
using sddd::diagnosis::phi;
using sddd::diagnosis::ranks_better;

int main(int argc, char** argv) {
  sddd::obs::configure_observability_from_args(&argc, argv);
  sddd::runtime::configure_threads_from_args(&argc, argv);
  std::printf("== Figure 2 reproduction: whose signature matches B? ==\n\n");

  // Observed behavior: PO1 fails vec1; PO2 fails vec2.
  const std::vector<bool> b1 = {true, false};   // column of vec1
  const std::vector<bool> b2 = {false, true};   // column of vec2
  // Signature probability columns per fault (probability of failing).
  const std::vector<double> f1v1 = {0.8, 0.4};
  const std::vector<double> f1v2 = {0.5, 0.6};
  const std::vector<double> f2v1 = {0.6, 0.3};
  const std::vector<double> f2v2 = {0.2, 0.5};

  std::printf("behavior matrix B:        fault #1 probs:   fault #2 probs:\n");
  std::printf("  PO1:  1   0               0.8   0.5         0.6   0.2\n");
  std::printf("  PO2:  0   1               0.4   0.6         0.3   0.5\n\n");

  // The naive views the paper describes.
  const double ones_f1 = 0.8 * 0.6;  // product over the '1' cells
  const double ones_f2 = 0.6 * 0.5;
  const double zeros_f1 = (1 - 0.4) * (1 - 0.5);  // product over '0' cells
  const double zeros_f2 = (1 - 0.3) * (1 - 0.2);
  std::printf("focus on the '1' cells : fault#1 %.3f vs fault#2 %.3f -> %s\n",
              ones_f1, ones_f2, ones_f1 > ones_f2 ? "fault #1" : "fault #2");
  std::printf("focus on the '0' cells : fault#1 %.3f vs fault#2 %.3f -> %s\n",
              zeros_f1, zeros_f2, zeros_f1 > zeros_f2 ? "fault #1" : "fault #2");
  std::printf("=> the two views disagree: the diagnosis error function must "
              "be chosen deliberately.\n\n");

  // Per-pattern consistency (Algorithm E.1 steps 5-6).
  const double phi_f1[2] = {phi(f1v1, b1), phi(f1v2, b2)};
  const double phi_f2[2] = {phi(f2v1, b1), phi(f2v2, b2)};
  std::printf("phi per pattern:  fault#1 = {%.3f, %.3f}   fault#2 = {%.3f, %.3f}\n\n",
              phi_f1[0], phi_f1[1], phi_f2[0], phi_f2[1]);

  std::printf("%-12s %10s %10s   winner\n", "method", "fault #1", "fault #2");
  for (const Method m :
       {Method::kSimI, Method::kSimII, Method::kSimIII, Method::kRev}) {
    ScoreAccumulator a1(m);
    ScoreAccumulator a2(m);
    for (int j = 0; j < 2; ++j) {
      a1.add_phi(phi_f1[j]);
      a2.add_phi(phi_f2[j]);
    }
    const double s1 = a1.finish(2);
    const double s2 = a2.finish(2);
    const char* winner = ranks_better(m, a1.ranking_key(2), a2.ranking_key(2))
                             ? "fault #1"
                             : "fault #2";
    std::printf("%-12s %10.4f %10.4f   %s\n",
                std::string(method_name(m)).c_str(), s1, s2, winner);
  }
  std::printf(
      "\n(The reported values are the probability-domain scores; Alg_rev is\n"
      "an error to MINIMIZE, the others are probabilities to MAXIMIZE.)\n");
  return 0;
}
