# Empty compiler generated dependencies file for bench_dictionary.
# This may be replaced when dependencies are built.
