file(REMOVE_RECURSE
  "CMakeFiles/bench_dictionary.dir/bench_dictionary.cc.o"
  "CMakeFiles/bench_dictionary.dir/bench_dictionary.cc.o.d"
  "bench_dictionary"
  "bench_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
