# Empty dependencies file for bench_coverage.
# This may be replaced when dependencies are built.
