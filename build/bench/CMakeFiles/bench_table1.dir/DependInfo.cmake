
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cc.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/sddd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/sddd_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/sddd_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/sddd_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sddd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/sddd_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
