file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2.dir/bench_figure2.cc.o"
  "CMakeFiles/bench_figure2.dir/bench_figure2.cc.o.d"
  "bench_figure2"
  "bench_figure2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
