file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1.dir/bench_figure1.cc.o"
  "CMakeFiles/bench_figure1.dir/bench_figure1.cc.o.d"
  "bench_figure1"
  "bench_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
