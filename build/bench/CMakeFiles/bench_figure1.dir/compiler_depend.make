# Empty compiler generated dependencies file for bench_figure1.
# This may be replaced when dependencies are built.
