file(REMOVE_RECURSE
  "CMakeFiles/sddd_logicsim.dir/bitsim.cc.o"
  "CMakeFiles/sddd_logicsim.dir/bitsim.cc.o.d"
  "CMakeFiles/sddd_logicsim.dir/event_sim.cc.o"
  "CMakeFiles/sddd_logicsim.dir/event_sim.cc.o.d"
  "CMakeFiles/sddd_logicsim.dir/ternary.cc.o"
  "CMakeFiles/sddd_logicsim.dir/ternary.cc.o.d"
  "libsddd_logicsim.a"
  "libsddd_logicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_logicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
