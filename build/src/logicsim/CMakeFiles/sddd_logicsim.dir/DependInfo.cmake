
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logicsim/bitsim.cc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/bitsim.cc.o" "gcc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/bitsim.cc.o.d"
  "/root/repo/src/logicsim/event_sim.cc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/event_sim.cc.o" "gcc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/event_sim.cc.o.d"
  "/root/repo/src/logicsim/ternary.cc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/ternary.cc.o" "gcc" "src/logicsim/CMakeFiles/sddd_logicsim.dir/ternary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
