# Empty compiler generated dependencies file for sddd_logicsim.
# This may be replaced when dependencies are built.
