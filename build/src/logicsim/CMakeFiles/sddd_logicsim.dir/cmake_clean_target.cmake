file(REMOVE_RECURSE
  "libsddd_logicsim.a"
)
