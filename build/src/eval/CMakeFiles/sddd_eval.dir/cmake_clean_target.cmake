file(REMOVE_RECURSE
  "libsddd_eval.a"
)
