file(REMOVE_RECURSE
  "CMakeFiles/sddd_eval.dir/coverage.cc.o"
  "CMakeFiles/sddd_eval.dir/coverage.cc.o.d"
  "CMakeFiles/sddd_eval.dir/experiment.cc.o"
  "CMakeFiles/sddd_eval.dir/experiment.cc.o.d"
  "CMakeFiles/sddd_eval.dir/paper_reference.cc.o"
  "CMakeFiles/sddd_eval.dir/paper_reference.cc.o.d"
  "CMakeFiles/sddd_eval.dir/table1.cc.o"
  "CMakeFiles/sddd_eval.dir/table1.cc.o.d"
  "libsddd_eval.a"
  "libsddd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
