# Empty dependencies file for sddd_eval.
# This may be replaced when dependencies are built.
