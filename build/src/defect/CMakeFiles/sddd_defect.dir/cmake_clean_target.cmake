file(REMOVE_RECURSE
  "libsddd_defect.a"
)
