# Empty dependencies file for sddd_defect.
# This may be replaced when dependencies are built.
