file(REMOVE_RECURSE
  "CMakeFiles/sddd_defect.dir/defect_model.cc.o"
  "CMakeFiles/sddd_defect.dir/defect_model.cc.o.d"
  "CMakeFiles/sddd_defect.dir/injector.cc.o"
  "CMakeFiles/sddd_defect.dir/injector.cc.o.d"
  "libsddd_defect.a"
  "libsddd_defect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_defect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
