# CMake generated Testfile for 
# Source directory: /root/repo/src/diagnosis
# Build directory: /root/repo/build/src/diagnosis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
