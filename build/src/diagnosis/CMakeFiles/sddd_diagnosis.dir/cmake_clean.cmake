file(REMOVE_RECURSE
  "CMakeFiles/sddd_diagnosis.dir/auto_k.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/auto_k.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/behavior.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/behavior.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/diagnoser.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/diagnoser.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/dictionary.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/dictionary.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/dictionary_io.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/dictionary_io.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/error_fn.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/error_fn.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/logic_baseline.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/logic_baseline.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/pattern_select.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/pattern_select.cc.o.d"
  "CMakeFiles/sddd_diagnosis.dir/resolution.cc.o"
  "CMakeFiles/sddd_diagnosis.dir/resolution.cc.o.d"
  "libsddd_diagnosis.a"
  "libsddd_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
