
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/auto_k.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/auto_k.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/auto_k.cc.o.d"
  "/root/repo/src/diagnosis/behavior.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/behavior.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/behavior.cc.o.d"
  "/root/repo/src/diagnosis/diagnoser.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/diagnoser.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/diagnoser.cc.o.d"
  "/root/repo/src/diagnosis/dictionary.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/dictionary.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/dictionary.cc.o.d"
  "/root/repo/src/diagnosis/dictionary_io.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/dictionary_io.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/dictionary_io.cc.o.d"
  "/root/repo/src/diagnosis/error_fn.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/error_fn.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/error_fn.cc.o.d"
  "/root/repo/src/diagnosis/logic_baseline.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/logic_baseline.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/logic_baseline.cc.o.d"
  "/root/repo/src/diagnosis/pattern_select.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/pattern_select.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/pattern_select.cc.o.d"
  "/root/repo/src/diagnosis/resolution.cc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/resolution.cc.o" "gcc" "src/diagnosis/CMakeFiles/sddd_diagnosis.dir/resolution.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/sddd_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sddd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/sddd_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
