# Empty compiler generated dependencies file for sddd_diagnosis.
# This may be replaced when dependencies are built.
