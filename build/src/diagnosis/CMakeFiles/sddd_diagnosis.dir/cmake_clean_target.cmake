file(REMOVE_RECURSE
  "libsddd_diagnosis.a"
)
