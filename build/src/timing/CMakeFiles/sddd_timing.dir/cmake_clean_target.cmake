file(REMOVE_RECURSE
  "libsddd_timing.a"
)
