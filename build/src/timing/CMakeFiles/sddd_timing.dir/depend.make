# Empty dependencies file for sddd_timing.
# This may be replaced when dependencies are built.
