file(REMOVE_RECURSE
  "CMakeFiles/sddd_timing.dir/celllib.cc.o"
  "CMakeFiles/sddd_timing.dir/celllib.cc.o.d"
  "CMakeFiles/sddd_timing.dir/clark_ssta.cc.o"
  "CMakeFiles/sddd_timing.dir/clark_ssta.cc.o.d"
  "CMakeFiles/sddd_timing.dir/criticality.cc.o"
  "CMakeFiles/sddd_timing.dir/criticality.cc.o.d"
  "CMakeFiles/sddd_timing.dir/delay_field.cc.o"
  "CMakeFiles/sddd_timing.dir/delay_field.cc.o.d"
  "CMakeFiles/sddd_timing.dir/delay_model.cc.o"
  "CMakeFiles/sddd_timing.dir/delay_model.cc.o.d"
  "CMakeFiles/sddd_timing.dir/dynamic_sim.cc.o"
  "CMakeFiles/sddd_timing.dir/dynamic_sim.cc.o.d"
  "CMakeFiles/sddd_timing.dir/slack.cc.o"
  "CMakeFiles/sddd_timing.dir/slack.cc.o.d"
  "CMakeFiles/sddd_timing.dir/ssta.cc.o"
  "CMakeFiles/sddd_timing.dir/ssta.cc.o.d"
  "libsddd_timing.a"
  "libsddd_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
