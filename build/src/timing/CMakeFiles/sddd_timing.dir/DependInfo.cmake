
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/celllib.cc" "src/timing/CMakeFiles/sddd_timing.dir/celllib.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/celllib.cc.o.d"
  "/root/repo/src/timing/clark_ssta.cc" "src/timing/CMakeFiles/sddd_timing.dir/clark_ssta.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/clark_ssta.cc.o.d"
  "/root/repo/src/timing/criticality.cc" "src/timing/CMakeFiles/sddd_timing.dir/criticality.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/criticality.cc.o.d"
  "/root/repo/src/timing/delay_field.cc" "src/timing/CMakeFiles/sddd_timing.dir/delay_field.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/delay_field.cc.o.d"
  "/root/repo/src/timing/delay_model.cc" "src/timing/CMakeFiles/sddd_timing.dir/delay_model.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/delay_model.cc.o.d"
  "/root/repo/src/timing/dynamic_sim.cc" "src/timing/CMakeFiles/sddd_timing.dir/dynamic_sim.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/dynamic_sim.cc.o.d"
  "/root/repo/src/timing/slack.cc" "src/timing/CMakeFiles/sddd_timing.dir/slack.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/slack.cc.o.d"
  "/root/repo/src/timing/ssta.cc" "src/timing/CMakeFiles/sddd_timing.dir/ssta.cc.o" "gcc" "src/timing/CMakeFiles/sddd_timing.dir/ssta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/sddd_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
