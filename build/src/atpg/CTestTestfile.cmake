# CMake generated Testfile for 
# Source directory: /root/repo/src/atpg
# Build directory: /root/repo/build/src/atpg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
