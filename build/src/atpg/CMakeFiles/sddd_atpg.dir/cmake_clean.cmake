file(REMOVE_RECURSE
  "CMakeFiles/sddd_atpg.dir/diag_patterns.cc.o"
  "CMakeFiles/sddd_atpg.dir/diag_patterns.cc.o.d"
  "CMakeFiles/sddd_atpg.dir/ga_fill.cc.o"
  "CMakeFiles/sddd_atpg.dir/ga_fill.cc.o.d"
  "CMakeFiles/sddd_atpg.dir/pdf_atpg.cc.o"
  "CMakeFiles/sddd_atpg.dir/pdf_atpg.cc.o.d"
  "CMakeFiles/sddd_atpg.dir/podem.cc.o"
  "CMakeFiles/sddd_atpg.dir/podem.cc.o.d"
  "CMakeFiles/sddd_atpg.dir/scan_modes.cc.o"
  "CMakeFiles/sddd_atpg.dir/scan_modes.cc.o.d"
  "libsddd_atpg.a"
  "libsddd_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
