file(REMOVE_RECURSE
  "libsddd_atpg.a"
)
