
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/diag_patterns.cc" "src/atpg/CMakeFiles/sddd_atpg.dir/diag_patterns.cc.o" "gcc" "src/atpg/CMakeFiles/sddd_atpg.dir/diag_patterns.cc.o.d"
  "/root/repo/src/atpg/ga_fill.cc" "src/atpg/CMakeFiles/sddd_atpg.dir/ga_fill.cc.o" "gcc" "src/atpg/CMakeFiles/sddd_atpg.dir/ga_fill.cc.o.d"
  "/root/repo/src/atpg/pdf_atpg.cc" "src/atpg/CMakeFiles/sddd_atpg.dir/pdf_atpg.cc.o" "gcc" "src/atpg/CMakeFiles/sddd_atpg.dir/pdf_atpg.cc.o.d"
  "/root/repo/src/atpg/podem.cc" "src/atpg/CMakeFiles/sddd_atpg.dir/podem.cc.o" "gcc" "src/atpg/CMakeFiles/sddd_atpg.dir/podem.cc.o.d"
  "/root/repo/src/atpg/scan_modes.cc" "src/atpg/CMakeFiles/sddd_atpg.dir/scan_modes.cc.o" "gcc" "src/atpg/CMakeFiles/sddd_atpg.dir/scan_modes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/sddd_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sddd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
