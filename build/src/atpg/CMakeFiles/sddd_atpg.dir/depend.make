# Empty dependencies file for sddd_atpg.
# This may be replaced when dependencies are built.
