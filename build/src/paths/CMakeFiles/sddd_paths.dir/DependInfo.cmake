
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/path.cc" "src/paths/CMakeFiles/sddd_paths.dir/path.cc.o" "gcc" "src/paths/CMakeFiles/sddd_paths.dir/path.cc.o.d"
  "/root/repo/src/paths/path_enum.cc" "src/paths/CMakeFiles/sddd_paths.dir/path_enum.cc.o" "gcc" "src/paths/CMakeFiles/sddd_paths.dir/path_enum.cc.o.d"
  "/root/repo/src/paths/transition_graph.cc" "src/paths/CMakeFiles/sddd_paths.dir/transition_graph.cc.o" "gcc" "src/paths/CMakeFiles/sddd_paths.dir/transition_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
