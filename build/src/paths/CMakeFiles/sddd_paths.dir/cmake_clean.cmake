file(REMOVE_RECURSE
  "CMakeFiles/sddd_paths.dir/path.cc.o"
  "CMakeFiles/sddd_paths.dir/path.cc.o.d"
  "CMakeFiles/sddd_paths.dir/path_enum.cc.o"
  "CMakeFiles/sddd_paths.dir/path_enum.cc.o.d"
  "CMakeFiles/sddd_paths.dir/transition_graph.cc.o"
  "CMakeFiles/sddd_paths.dir/transition_graph.cc.o.d"
  "libsddd_paths.a"
  "libsddd_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
