file(REMOVE_RECURSE
  "libsddd_paths.a"
)
