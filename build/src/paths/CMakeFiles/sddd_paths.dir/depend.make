# Empty dependencies file for sddd_paths.
# This may be replaced when dependencies are built.
