file(REMOVE_RECURSE
  "CMakeFiles/sddd_netlist.dir/bench_io.cc.o"
  "CMakeFiles/sddd_netlist.dir/bench_io.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/cell.cc.o"
  "CMakeFiles/sddd_netlist.dir/cell.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/iscas_catalog.cc.o"
  "CMakeFiles/sddd_netlist.dir/iscas_catalog.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/levelize.cc.o"
  "CMakeFiles/sddd_netlist.dir/levelize.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/netlist.cc.o"
  "CMakeFiles/sddd_netlist.dir/netlist.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/scan.cc.o"
  "CMakeFiles/sddd_netlist.dir/scan.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/synth.cc.o"
  "CMakeFiles/sddd_netlist.dir/synth.cc.o.d"
  "CMakeFiles/sddd_netlist.dir/verilog_io.cc.o"
  "CMakeFiles/sddd_netlist.dir/verilog_io.cc.o.d"
  "libsddd_netlist.a"
  "libsddd_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
