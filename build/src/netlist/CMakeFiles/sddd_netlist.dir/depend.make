# Empty dependencies file for sddd_netlist.
# This may be replaced when dependencies are built.
