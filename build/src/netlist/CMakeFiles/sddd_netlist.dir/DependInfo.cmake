
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/bench_io.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/bench_io.cc.o.d"
  "/root/repo/src/netlist/cell.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/cell.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/cell.cc.o.d"
  "/root/repo/src/netlist/iscas_catalog.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/iscas_catalog.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/iscas_catalog.cc.o.d"
  "/root/repo/src/netlist/levelize.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/levelize.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/levelize.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/netlist.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/netlist.cc.o.d"
  "/root/repo/src/netlist/scan.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/scan.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/scan.cc.o.d"
  "/root/repo/src/netlist/synth.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/synth.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/synth.cc.o.d"
  "/root/repo/src/netlist/verilog_io.cc" "src/netlist/CMakeFiles/sddd_netlist.dir/verilog_io.cc.o" "gcc" "src/netlist/CMakeFiles/sddd_netlist.dir/verilog_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
