file(REMOVE_RECURSE
  "libsddd_netlist.a"
)
