
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/sddd_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/sddd_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/sddd_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/sddd_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/rv.cc" "src/stats/CMakeFiles/sddd_stats.dir/rv.cc.o" "gcc" "src/stats/CMakeFiles/sddd_stats.dir/rv.cc.o.d"
  "/root/repo/src/stats/sample_vector.cc" "src/stats/CMakeFiles/sddd_stats.dir/sample_vector.cc.o" "gcc" "src/stats/CMakeFiles/sddd_stats.dir/sample_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
