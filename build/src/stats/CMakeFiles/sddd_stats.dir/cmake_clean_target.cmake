file(REMOVE_RECURSE
  "libsddd_stats.a"
)
