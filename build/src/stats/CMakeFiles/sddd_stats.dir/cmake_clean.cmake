file(REMOVE_RECURSE
  "CMakeFiles/sddd_stats.dir/correlation.cc.o"
  "CMakeFiles/sddd_stats.dir/correlation.cc.o.d"
  "CMakeFiles/sddd_stats.dir/histogram.cc.o"
  "CMakeFiles/sddd_stats.dir/histogram.cc.o.d"
  "CMakeFiles/sddd_stats.dir/rv.cc.o"
  "CMakeFiles/sddd_stats.dir/rv.cc.o.d"
  "CMakeFiles/sddd_stats.dir/sample_vector.cc.o"
  "CMakeFiles/sddd_stats.dir/sample_vector.cc.o.d"
  "libsddd_stats.a"
  "libsddd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
