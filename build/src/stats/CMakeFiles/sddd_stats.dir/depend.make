# Empty dependencies file for sddd_stats.
# This may be replaced when dependencies are built.
