# Empty dependencies file for atpg_flow.
# This may be replaced when dependencies are built.
