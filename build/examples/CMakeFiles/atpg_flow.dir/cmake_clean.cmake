file(REMOVE_RECURSE
  "CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o"
  "CMakeFiles/atpg_flow.dir/atpg_flow.cpp.o.d"
  "atpg_flow"
  "atpg_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
