file(REMOVE_RECURSE
  "CMakeFiles/test_quality_report.dir/test_quality_report.cpp.o"
  "CMakeFiles/test_quality_report.dir/test_quality_report.cpp.o.d"
  "test_quality_report"
  "test_quality_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
