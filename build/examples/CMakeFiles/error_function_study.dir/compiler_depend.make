# Empty compiler generated dependencies file for error_function_study.
# This may be replaced when dependencies are built.
