file(REMOVE_RECURSE
  "CMakeFiles/error_function_study.dir/error_function_study.cpp.o"
  "CMakeFiles/error_function_study.dir/error_function_study.cpp.o.d"
  "error_function_study"
  "error_function_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_function_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
