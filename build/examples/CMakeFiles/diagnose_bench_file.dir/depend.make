# Empty dependencies file for diagnose_bench_file.
# This may be replaced when dependencies are built.
