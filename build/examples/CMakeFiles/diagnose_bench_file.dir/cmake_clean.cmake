file(REMOVE_RECURSE
  "CMakeFiles/diagnose_bench_file.dir/diagnose_bench_file.cpp.o"
  "CMakeFiles/diagnose_bench_file.dir/diagnose_bench_file.cpp.o.d"
  "diagnose_bench_file"
  "diagnose_bench_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_bench_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
