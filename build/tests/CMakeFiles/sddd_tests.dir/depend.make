# Empty dependencies file for sddd_tests.
# This may be replaced when dependencies are built.
