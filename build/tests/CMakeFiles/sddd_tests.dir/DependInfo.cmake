
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_atpg.cc" "tests/CMakeFiles/sddd_tests.dir/test_atpg.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_atpg.cc.o.d"
  "/root/repo/tests/test_auto_k.cc" "tests/CMakeFiles/sddd_tests.dir/test_auto_k.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_auto_k.cc.o.d"
  "/root/repo/tests/test_catalog_sweep.cc" "tests/CMakeFiles/sddd_tests.dir/test_catalog_sweep.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_catalog_sweep.cc.o.d"
  "/root/repo/tests/test_clark_resolution.cc" "tests/CMakeFiles/sddd_tests.dir/test_clark_resolution.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_clark_resolution.cc.o.d"
  "/root/repo/tests/test_criticality_coverage.cc" "tests/CMakeFiles/sddd_tests.dir/test_criticality_coverage.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_criticality_coverage.cc.o.d"
  "/root/repo/tests/test_defect.cc" "tests/CMakeFiles/sddd_tests.dir/test_defect.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_defect.cc.o.d"
  "/root/repo/tests/test_diagnosis.cc" "tests/CMakeFiles/sddd_tests.dir/test_diagnosis.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_diagnosis.cc.o.d"
  "/root/repo/tests/test_dictionary_io.cc" "tests/CMakeFiles/sddd_tests.dir/test_dictionary_io.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_dictionary_io.cc.o.d"
  "/root/repo/tests/test_eval.cc" "tests/CMakeFiles/sddd_tests.dir/test_eval.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_eval.cc.o.d"
  "/root/repo/tests/test_event_sim.cc" "tests/CMakeFiles/sddd_tests.dir/test_event_sim.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_event_sim.cc.o.d"
  "/root/repo/tests/test_integration_smoke.cc" "tests/CMakeFiles/sddd_tests.dir/test_integration_smoke.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_integration_smoke.cc.o.d"
  "/root/repo/tests/test_logic_baseline.cc" "tests/CMakeFiles/sddd_tests.dir/test_logic_baseline.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_logic_baseline.cc.o.d"
  "/root/repo/tests/test_logicsim.cc" "tests/CMakeFiles/sddd_tests.dir/test_logicsim.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_logicsim.cc.o.d"
  "/root/repo/tests/test_misc_edges.cc" "tests/CMakeFiles/sddd_tests.dir/test_misc_edges.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_misc_edges.cc.o.d"
  "/root/repo/tests/test_netlist.cc" "tests/CMakeFiles/sddd_tests.dir/test_netlist.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_netlist.cc.o.d"
  "/root/repo/tests/test_paths.cc" "tests/CMakeFiles/sddd_tests.dir/test_paths.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_paths.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/sddd_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_scan_modes.cc" "tests/CMakeFiles/sddd_tests.dir/test_scan_modes.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_scan_modes.cc.o.d"
  "/root/repo/tests/test_slack.cc" "tests/CMakeFiles/sddd_tests.dir/test_slack.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_slack.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/sddd_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/sddd_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_verilog_io.cc" "tests/CMakeFiles/sddd_tests.dir/test_verilog_io.cc.o" "gcc" "tests/CMakeFiles/sddd_tests.dir/test_verilog_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/sddd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/sddd_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/sddd_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/defect/CMakeFiles/sddd_defect.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sddd_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/sddd_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/logicsim/CMakeFiles/sddd_logicsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sddd_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sddd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
