file(REMOVE_RECURSE
  "CMakeFiles/sddd_cli.dir/sddd_cli.cc.o"
  "CMakeFiles/sddd_cli.dir/sddd_cli.cc.o.d"
  "sddd_cli"
  "sddd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sddd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
