# Empty compiler generated dependencies file for sddd_cli.
# This may be replaced when dependencies are built.
