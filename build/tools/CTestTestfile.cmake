# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_synth "/root/repo/build/tools/sddd_cli" "synth" "/root/repo/build/tools/cli_demo.bench" "--inputs" "10" "--outputs" "6" "--gates" "60" "--depth" "8" "--seed" "3")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/sddd_cli" "info" "/root/repo/build/tools/cli_demo.bench")
set_tests_properties(cli_info PROPERTIES  DEPENDS "cli_synth" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_convert "/root/repo/build/tools/sddd_cli" "convert" "/root/repo/build/tools/cli_demo.bench" "/root/repo/build/tools/cli_demo.v")
set_tests_properties(cli_convert PROPERTIES  DEPENDS "cli_synth" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info_verilog "/root/repo/build/tools/sddd_cli" "info" "/root/repo/build/tools/cli_demo.v")
set_tests_properties(cli_info_verilog PROPERTIES  DEPENDS "cli_convert" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_atpg "/root/repo/build/tools/sddd_cli" "atpg" "/root/repo/build/tools/cli_demo.bench" "--site" "10" "--max-patterns" "4")
set_tests_properties(cli_atpg PROPERTIES  DEPENDS "cli_synth" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diagnose "/root/repo/build/tools/sddd_cli" "diagnose" "/root/repo/build/tools/cli_demo.bench" "--chips" "2" "--samples" "60")
set_tests_properties(cli_diagnose PROPERTIES  DEPENDS "cli_synth" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/sddd_cli" "frobnicate")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
