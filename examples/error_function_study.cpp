// error_function_study - A miniature of the paper's central experiment:
// which diagnosis error function localizes delay defects best?
//
// Runs N failing chips on one circuit and prints, for every method, the
// distribution of the true site's rank and top-K success - the per-chip
// view behind a Table I row.  Also demonstrates adding a *custom* error
// function through the DiagnosisErrorFn interface (the paper's future
// work #5): a "harmonic evidence" function rewarding consistently
// explained patterns.
//
// Usage:  error_function_study [n_chips]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/experiment.h"
#include "netlist/iscas_catalog.h"

using namespace sddd;
using diagnosis::Method;

namespace {

/// Example custom error function: the harmonic mean of per-pattern match
/// probabilities, computed from the same phi values the built-ins consume.
/// (Shown here applied offline to recorded phis; to use one inside the
/// Diagnoser, extend diagnosis::Method - the machinery is the same.)
class HarmonicEvidence final : public diagnosis::DiagnosisErrorFn {
 public:
  double score(std::span<const double> phis) const override {
    if (phis.empty()) return 0.0;
    double acc = 0.0;
    for (const double p : phis) acc += 1.0 / (p + 1e-12);
    return static_cast<double>(phis.size()) / acc;
  }
  bool higher_is_better() const override { return true; }
  std::string_view name() const override { return "harmonic"; }
};

}  // namespace

int main(int argc, char** argv) {
  const auto* profile = netlist::find_profile("s1196");
  const auto nl = netlist::make_standin(*profile, 0.5, 2003);
  std::printf("circuit: %s\n\n", nl.summary().c_str());

  eval::ExperimentConfig config;
  config.n_chips = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  config.mc_samples = 250;
  config.seed = 99;

  const auto result = eval::run_diagnosis_experiment(nl, config);
  std::printf("diagnosable chips: %zu/%zu, clk = %.1f tu\n\n",
              result.diagnosable_trials(), result.trials.size(), result.clk);

  // Rank distribution per method.
  std::printf("rank of the true defect site per chip (-1 = not in S):\n");
  std::printf("%-12s", "chip");
  for (const auto m : config.methods) {
    std::printf(" %10s", std::string(method_name(m)).c_str());
  }
  std::printf("\n");
  std::size_t chip_no = 0;
  for (const auto& t : result.trials) {
    if (!t.failed_test) continue;
    std::printf("chip %-7zu", chip_no++);
    for (const int r : t.rank_of_true) std::printf(" %10d", r);
    std::printf("\n");
  }

  std::printf("\ntop-K success rate:\n%4s", "K");
  for (const auto m : config.methods) {
    std::printf(" %10s", std::string(method_name(m)).c_str());
  }
  std::printf("\n");
  for (const int k : {1, 2, 3, 5, 7, 10}) {
    std::printf("%4d", k);
    for (const auto m : config.methods) {
      std::printf(" %9.0f%%", 100 * result.success_rate(m, k));
    }
    std::printf("\n");
  }

  // Median rank comparison - a finer lens than top-K.
  std::printf("\nmedian rank of the true site:\n");
  for (std::size_t mi = 0; mi < config.methods.size(); ++mi) {
    std::vector<int> ranks;
    for (const auto& t : result.trials) {
      if (t.failed_test && t.rank_of_true[mi] >= 0) {
        ranks.push_back(t.rank_of_true[mi]);
      }
    }
    std::sort(ranks.begin(), ranks.end());
    const int median = ranks.empty() ? -1 : ranks[ranks.size() / 2];
    std::printf("  %-12s %d\n",
                std::string(method_name(config.methods[mi])).c_str(), median);
  }

  // The custom function, exercised on a synthetic phi profile.
  const HarmonicEvidence harmonic;
  const std::vector<double> steady = {0.4, 0.4, 0.4};
  const std::vector<double> spiky = {0.9, 0.29, 0.01};
  std::printf(
      "\ncustom error function '%s' (DiagnosisErrorFn): steady evidence "
      "%.3f > spiky evidence %.3f\n",
      std::string(harmonic.name()).c_str(), harmonic.score(steady),
      harmonic.score(spiky));
  std::printf("(same mean phi; the interface admits new functions - the "
              "paper's future work #5)\n");
  return 0;
}
