// diagnose_bench_file - The real-netlist workflow: parse an ISCAS `.bench`
// file, full-scan transform it, and run the complete injection + diagnosis
// experiment on it, printing per-K success rates.
//
// Usage:  diagnose_bench_file [path/to/circuit.bench] [n_chips]
//
// Without arguments the embedded s27 netlist is used, so the example is
// runnable out of the box; point it at any ISCAS-89 `.bench` download to
// reproduce the paper's setup on the true benchmark.
#include <cstdio>
#include <cstdlib>

#include "eval/experiment.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/scan.h"

using namespace sddd;

int main(int argc, char** argv) {
  netlist::Netlist sequential =
      argc > 1 ? netlist::parse_bench_file(argv[1])
               : netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  std::printf("parsed: %s\n", sequential.summary().c_str());

  const auto core = netlist::full_scan_transform(sequential);
  std::printf("full-scan core: %s\n\n", core.summary().c_str());

  eval::ExperimentConfig config;
  config.n_chips = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  config.mc_samples = 250;
  config.seed = 2003;

  const auto result = eval::run_diagnosis_experiment(core, config);
  std::printf("clk = %.1f tu, diagnosable chips: %zu/%zu, avg |S| = %.1f\n\n",
              result.clk, result.diagnosable_trials(), result.trials.size(),
              result.avg_suspects());

  std::printf("%4s | %7s %7s %8s %7s\n", "K", "sim-I", "sim-II", "sim-III",
              "rev");
  for (const int k : {1, 2, 3, 5, 7, 10}) {
    std::printf("%4d | %6.0f%% %6.0f%% %7.0f%% %6.0f%%\n", k,
                100 * result.success_rate(diagnosis::Method::kSimI, k),
                100 * result.success_rate(diagnosis::Method::kSimII, k),
                100 * result.success_rate(diagnosis::Method::kSimIII, k),
                100 * result.success_rate(diagnosis::Method::kRev, k));
  }
  return 0;
}
