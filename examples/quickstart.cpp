// quickstart - The whole flow in one page:
//
//   1. get a circuit (here: a seeded synthetic benchmark-class netlist),
//   2. attach the statistical timing model (Definition D.1),
//   3. manufacture a failing chip: one delay-configuration sample plus one
//      random delay defect (Definitions D.2, D.10),
//   4. generate diagnostic patterns for the fault's longest paths
//      (Section H-4),
//   5. observe the behavior matrix B at the rated clock,
//   6. run the diagnosis algorithms (Alg_sim I/II/III, Alg_rev) and print
//      the ranked suspects.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "atpg/diag_patterns.h"
#include "defect/defect_model.h"
#include "defect/injector.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

using namespace sddd;

int main() {
  // 1. A 150-gate combinational circuit, deterministic for the seed.
  netlist::SynthSpec spec;
  spec.name = "quickstart";
  spec.n_inputs = 16;
  spec.n_outputs = 10;
  spec.n_gates = 150;
  spec.depth = 12;
  spec.seed = 42;
  const auto nl = netlist::synthesize(spec);
  std::printf("circuit: %s\n", nl.summary().c_str());

  // 2. Statistical timing model: pin-to-pin delay RVs from the cell
  //    library, realized as two independent Monte-Carlo worlds - the
  //    dictionary's (the CAD model) and the fab's (actual chips).
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField dict_field(model, 300, 0.03, /*seed=*/1);
  const timing::DelayField fab_field(model, 300, 0.03, /*seed=*/2);
  const timing::DynamicTimingSimulator dict_sim(dict_field, lev);
  const timing::DynamicTimingSimulator fab_sim(fab_field, lev);
  const logicsim::BitSimulator logic_sim(nl, lev);

  // 3. Manufacture a defective chip: defect size 50-100% of a cell delay,
  //    3-sigma = 50% of the mean (the paper's Section I parameters).
  const auto size_model =
      defect::DefectSizeModel::paper_default(model.mean_cell_delay(), 7);
  const auto location = defect::SegmentDefectModel::uniform_single(
      nl, stats::RandomVariable::Normal(size_model.marginal_mean(),
                                        size_model.marginal_mean() / 6.0));
  const defect::DefectInjector injector(location, size_model);
  stats::Rng rng(2024);
  auto chip = injector.draw(fab_field.sample_count(), rng);

  // 4+5. Diagnostic patterns (tests for the statistically longest
  //    sensitizable paths through the defect site plus breadth patterns),
  //    a rated clock with half a defect of slack on the site's best path,
  //    and the observed behavior matrix B.  Chips whose defect never
  //    causes a failure are escapes (Figure 1's point) - redraw those.
  atpg::DiagnosticPatternConfig pattern_config;
  std::vector<logicsim::PatternPair> patterns;
  double clk = 0.0;
  diagnosis::BehaviorMatrix B(nl.outputs().size(), 0);
  for (int attempt = 0; attempt < 100; ++attempt) {
    chip = injector.draw(fab_field.sample_count(), rng);
    patterns = atpg::generate_diagnostic_patterns(model, lev, chip.defect_arc,
                                                  pattern_config, rng);
    const double best =
        atpg::site_best_nominal_delay(model, lev, patterns, chip.defect_arc);
    if (best <= 0.0) continue;  // site not testable by any pattern
    clk = best - 0.5 * size_model.marginal_mean();
    B = diagnosis::observe_behavior(
        fab_sim, logic_sim, lev, patterns, chip.sample_index,
        std::make_pair(chip.defect_arc, chip.defect_size), clk);
    if (!B.any_failure()) continue;
    // Require a failure the defect-free chip would not show.
    const auto B0 = diagnosis::observe_behavior(
        fab_sim, logic_sim, lev, patterns, chip.sample_index, std::nullopt,
        clk);
    bool caused = false;
    for (std::size_t i = 0; i < B.output_count() && !caused; ++i) {
      for (std::size_t j = 0; j < B.pattern_count(); ++j) {
        if (B.at(i, j) && !B0.at(i, j)) {
          caused = true;
          break;
        }
      }
    }
    if (caused) break;
    B = diagnosis::BehaviorMatrix(nl.outputs().size(), 0);
  }
  std::printf(
      "injected defect: arc %u (%s pin %u), size %.1f tu; chip sample %zu\n",
      chip.defect_arc, nl.gate(nl.arc(chip.defect_arc).gate).name.c_str(),
      nl.arc(chip.defect_arc).pin, chip.defect_size, chip.sample_index);
  std::printf("behavior: %zu failing cells across %zu patterns at clk %.1f\n",
              B.failure_count(), patterns.size(), clk);
  if (!B.any_failure()) {
    std::printf("chip never failed its test (escape) - nothing to diagnose\n");
    return 0;
  }

  // 6. Diagnose.
  const diagnosis::Diagnoser diagnoser(dict_sim, logic_sim, lev, size_model);
  const std::vector<diagnosis::Method> methods = {
      diagnosis::Method::kSimI, diagnosis::Method::kSimII,
      diagnosis::Method::kSimIII, diagnosis::Method::kRev};
  const auto result = diagnoser.diagnose(patterns, B, methods, clk);
  std::printf("suspect set |S| = %zu\n\n", result.suspects.size());

  for (const auto m : methods) {
    const auto ranked = result.ranked(m);
    int true_rank = -1;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].arc == chip.defect_arc) true_rank = static_cast<int>(i);
    }
    std::printf("%-12s true site rank %3d   top-5:",
                std::string(method_name(m)).c_str(), true_rank);
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
      const auto& arc = nl.arc(ranked[i].arc);
      std::printf("  %s.%u%s", nl.gate(arc.gate).name.c_str(), arc.pin,
                  ranked[i].arc == chip.defect_arc ? "(*)" : "");
    }
    std::printf("\n");
  }
  std::printf("\n(*) marks the true injected site; rank is 0-based within "
              "|S| suspects.\n");
  return 0;
}
