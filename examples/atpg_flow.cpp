// atpg_flow - The pattern-generation substrate on its own (Sections G and
// H-4): statistical longest-path selection through a fault site, robust /
// non-robust path-delay-fault test generation with PODEM, random fill
// versus GA fill, and the launched delays each test achieves.
//
// Usage:  atpg_flow [site_arc_id]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "atpg/ga_fill.h"
#include "atpg/pdf_atpg.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/synth.h"
#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"
#include "timing/ssta.h"

using namespace sddd;

int main(int argc, char** argv) {
  netlist::SynthSpec spec;
  spec.name = "atpgdemo";
  spec.n_inputs = 20;
  spec.n_outputs = 12;
  spec.n_gates = 220;
  spec.depth = 14;
  spec.seed = 5;
  const auto nl = netlist::synthesize(spec);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const logicsim::BitSimulator sim(nl, lev);
  std::printf("circuit: %s\n", nl.summary().c_str());

  // Statistical static timing: the nominal critical path and the spread of
  // the circuit delay, for context.
  const timing::DelayField field(model, 500, 0.03, 11);
  const timing::StaticTiming ssta(field, lev);
  std::printf("static Delta(C): mean %.1f, sd %.1f, q99 %.1f tu\n\n",
              ssta.circuit_delay().mean(), ssta.circuit_delay().stddev(),
              ssta.clk_at_quantile(0.99));

  // Some sites have no statically sensitizable path at all (all their
  // structural paths are false - the diagnosis harness covers those with
  // random site-activating search instead).  For the path-ATPG demo, scan
  // forward from the requested site to the first path-testable one.
  const atpg::PathDelayAtpg site_probe(nl, lev);
  auto site = argc > 1 ? static_cast<netlist::ArcId>(std::atoi(argv[1]))
                       : static_cast<netlist::ArcId>(nl.arc_count() / 3);
  for (std::uint32_t probe = 0; probe < nl.arc_count(); ++probe) {
    const auto cand = static_cast<netlist::ArcId>(
        (site + probe) % nl.arc_count());
    const auto ps =
        paths::k_heaviest_paths_through(nl, lev, model.means(), cand, 16);
    const bool testable = std::any_of(ps.begin(), ps.end(), [&](const auto& p) {
      return site_probe.sensitize(p, true, false, 300).has_value();
    });
    if (testable) {
      if (probe != 0) {
        std::printf("(skipped %u path-untestable sites before arc %u)\n",
                    probe, cand);
      }
      site = cand;
      break;
    }
  }
  const auto& arc = nl.arc(site);
  std::printf("fault site: arc %u = pin %u of %s\n\n", site, arc.pin,
              nl.gate(arc.gate).name.c_str());

  // Statistically longest structural paths through the site.  The very
  // heaviest ones are frequently false (unsensitizable reconvergence) -
  // scan down the list, reporting the false-path count, and demo test
  // generation on the sensitizable survivors.
  const auto candidates =
      paths::k_heaviest_paths_through(nl, lev, model.means(), site, 48);
  std::printf("heaviest structural paths through the site (of %zu candidates):\n",
              candidates.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(4, candidates.size()); ++i) {
    std::printf("  %7.1f tu  %s\n",
                paths::path_weight(candidates[i], model.means()),
                paths::path_to_string(nl, candidates[i]).c_str());
  }

  const atpg::PathDelayAtpg atpg(nl, lev);
  const atpg::GaFill ga(model, lev);
  stats::Rng rng(17);

  std::printf("\ntest generation, heaviest-first (rising transition):\n");
  std::size_t false_paths = 0;
  std::size_t shown = 0;
  for (const auto& path : candidates) {
    if (shown >= 4) break;
    // Sensitize (PODEM) - many of the heaviest paths are false.
    const auto non_robust = atpg.sensitize(path, true, /*robust=*/false, 300);
    if (!non_robust) {
      ++false_paths;
      continue;
    }
    ++shown;
    std::printf("  %7.1f tu  %s\n", paths::path_weight(path, model.means()),
                paths::path_to_string(nl, path).c_str());
    const bool robust_ok =
        atpg.sensitize(path, true, /*robust=*/true, 300).has_value();

    // Random fill vs GA fill: which launches the longer delay?
    const auto random_test = atpg.generate(path, true, false, rng);
    double random_delay = 0.0;
    if (random_test && atpg.activates(path, random_test->pattern)) {
      const paths::TransitionGraph tg(sim, lev, random_test->pattern);
      const auto arrivals = timing::nominal_arrivals(tg, model, lev);
      random_delay = arrivals[paths::path_sink(nl, path)];
    }
    const auto ga_result = ga.fill(path, *non_robust, rng);
    std::printf(
        "      sensitizable (%s)  random fill: %s %.1f tu   GA fill: %s "
        "fitness %.1f\n",
        robust_ok ? "robust" : "non-robust only",
        random_delay > 0 ? "activates," : "misses,  ", random_delay,
        ga_result.path_activated ? "activates," : "misses,  ",
        ga_result.fitness);
  }
  std::printf("  (%zu of the candidates scanned were false paths)\n",
              false_paths);

  std::printf(
      "\n(GA fill implements Section G's genetic-algorithm option: it fills\n"
      "the PODEM-unconstrained inputs to maximize the launched path "
      "delay.)\n");
  return 0;
}
