// test_quality_report - A failure-analysis engineer's pre-silicon report:
// given a circuit and a candidate test set, how good will delay-defect
// detection AND diagnosis be?
//
//   1. statistical coverage: which defect sizes/sites will the set catch
//      at the rated clock (eval/coverage.h);
//   2. criticality: where the circuit's timing risk concentrates
//      (timing/criticality.h);
//   3. diagnosis resolution: how many suspects the set can actually tell
//      apart, in the logic domain and in the timing domain
//      (diagnosis/resolution.h);
//   4. pattern selection: the subset of the set that carries the
//      diagnostic power (diagnosis/pattern_select.h).
//
// Usage:  test_quality_report [n_patterns]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "atpg/diag_patterns.h"
#include "defect/defect_model.h"
#include "diagnosis/dictionary.h"
#include "diagnosis/pattern_select.h"
#include "diagnosis/resolution.h"
#include "eval/coverage.h"
#include "logicsim/bitsim.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/criticality.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

using namespace sddd;
using netlist::ArcId;
using netlist::GateId;

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 18;

  const auto nl =
      netlist::make_standin(*netlist::find_profile("s1196"), 0.5, 2003);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 250, 0.03, 77);
  const timing::DynamicTimingSimulator dyn(field, lev);
  const logicsim::BitSimulator sim(nl, lev);
  std::printf("== Test quality report: %s ==\n\n", nl.summary().c_str());

  // Candidate test set: per-site diagnostic patterns for a handful of
  // sites, capped at `budget`.
  stats::Rng rng(7);
  std::vector<logicsim::PatternPair> patterns;
  atpg::DiagnosticPatternConfig pattern_config;
  pattern_config.max_patterns = 5;
  while (patterns.size() < budget) {
    const auto site = static_cast<ArcId>(
        rng.below(static_cast<std::uint32_t>(nl.arc_count())));
    for (auto& p : atpg::generate_diagnostic_patterns(model, lev, site,
                                                      pattern_config, rng)) {
      if (patterns.size() < budget) patterns.push_back(std::move(p));
    }
  }
  stats::SampleVector delta(field.sample_count(), 0.0);
  for (const auto& p : patterns) {
    const paths::TransitionGraph tg(sim, lev, p);
    delta.max_with(dyn.induced_delay(tg, dyn.simulate(tg)));
  }
  const double clk = delta.quantile(0.9);
  std::printf("test set: %zu patterns; rated clock %.1f tu (q90)\n\n",
              patterns.size(), clk);

  // --- 1. coverage ---
  const auto size_model =
      defect::DefectSizeModel::paper_default(model.mean_cell_delay(), 9);
  std::vector<ArcId> sample_sites;
  for (ArcId a = 0; a < nl.arc_count(); a += 11) sample_sites.push_back(a);
  const auto cov = eval::statistical_coverage(dyn, sim, lev, patterns,
                                              sample_sites, size_model, clk);
  std::printf("1. coverage (paper-size defects, %zu sampled sites):\n",
              sample_sites.size());
  std::printf("   mean P(detect) %.3f | sites with P>=0.5: %.0f%% | "
              "good-chip fail prob %.3f\n\n",
              cov.mean_coverage(), 100.0 * cov.detection_rate(0.5),
              cov.defect_free_fail);

  // --- 2. criticality ---
  const timing::CriticalityAnalysis crit(field, lev);
  const auto ranked = crit.ranked_arcs();
  double top10 = 0.0;
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    top10 += crit.arc_criticality(ranked[i]);
  }
  std::printf("2. timing risk: top-10 arcs carry %.1f%% of per-arc "
              "criticality mass;\n   leader: arc %u (%s) at %.2f\n\n",
              100.0 * top10 / 10.0, ranked[0],
              nl.gate(nl.arc(ranked[0]).gate).name.c_str(),
              crit.arc_criticality(ranked[0]));

  // --- 3. resolution ---
  // Suspect universe: arcs the set exercises (active under some pattern).
  std::vector<ArcId> suspects;
  {
    const paths::TransitionGraph tg(sim, lev, patterns[0]);
    for (ArcId a = 0; a < nl.arc_count() && suspects.size() < 60; ++a) {
      if (tg.is_active(a)) suspects.push_back(a);
    }
  }
  const auto logic_classes =
      diagnosis::logic_equivalence_classes(sim, lev, patterns, suspects);
  std::printf("3. resolution over %zu exercised suspects:\n", suspects.size());
  std::printf(
      "   logic footprint (ideal):        %3zu classes (largest %2zu), "
      "resolution %.2f\n",
      logic_classes.count(), logic_classes.largest(),
      logic_classes.resolution(suspects.size()));
  // Timing resolution at a tolerance: suspects whose signatures differ by
  // less than eps anywhere are practically indistinguishable (eps ~ a few
  // Monte-Carlo standard errors is the realistic floor).  The paper's
  // Section C: with statistical timing, "whether a pattern can
  // differentiate two given faults should be characterized as a
  // probability value" - resolution is no longer a crisp count but a
  // function of the separation one insists on.
  const diagnosis::FaultDictionary dict(dyn, sim, lev, patterns, clk);
  for (const double eps : {0.0, 0.02, 0.1}) {
    const auto timing_classes = diagnosis::timing_equivalence_classes(
        dict, size_model, suspects, eps);
    std::printf(
        "   timing @ eps=%.2f:              %3zu classes (largest %2zu), "
        "resolution %.2f\n",
        eps, timing_classes.count(), timing_classes.largest(),
        timing_classes.resolution(suspects.size()));
  }
  // How much of the blob is "defect never visible at clk"?
  std::size_t invisible = 0;
  for (const ArcId s : suspects) {
    bool any = false;
    for (std::size_t j = 0; j < dict.pattern_count() && !any; ++j) {
      for (const double x : dict.slice(j).signature_column(s, size_model)) {
        if (x > 0.0) {
          any = true;
          break;
        }
      }
    }
    invisible += any ? 0U : 1U;
  }
  std::printf(
      "   => %zu of %zu suspects have an all-zero signature: at this clock\n"
      "   their defects never become visible, so they are one\n"
      "   indistinguishable blob (Figure 1's escapes, seen from the\n"
      "   diagnosis side).  Resolution concentrates on the near-critical\n"
      "   suspects; the logic footprint is the ceiling a tighter clock\n"
      "   could approach.\n\n",
      invisible, suspects.size());

  // --- 4. pattern selection ---
  std::vector<ArcId> select_suspects(
      suspects.begin(),
      suspects.begin() + std::min<std::size_t>(suspects.size(), 14));
  diagnosis::PatternSelectConfig select_config;
  select_config.budget = 6;
  select_config.epsilon = 0.02;
  const auto sel = diagnosis::select_diagnostic_patterns(
      dyn, sim, lev, patterns, select_suspects, size_model, clk,
      select_config);
  std::printf("4. diagnostic power: %zu of %zu patterns distinguish %.0f%% "
              "of suspect pairs\n",
              sel.chosen.size(), patterns.size(), 100.0 * sel.coverage());
  for (std::size_t i = 0; i < sel.chosen.size(); ++i) {
    std::printf("   pick %zu: pattern %2zu -> %zu/%zu pairs\n", i + 1,
                sel.chosen[i], sel.pairs_covered[i], sel.total_pairs);
  }
  return 0;
}
